package obs

import (
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ion_pipeline_stage_seconds", "stage latency", nil, L("stage", "analyze"))
	h.ObserveExemplar(0.004, "job-fast")
	h.ObserveExemplar(7.5, "job-slow")
	h.ObserveExemplar(0.0045, "job-faster") // same bucket as job-fast: newest wins
	h.Observe(100)                          // no trace id: counted, no exemplar

	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4 (ObserveExemplar must count like Observe)", got)
	}
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2", ex)
	}
	if ex[0].TraceID != "job-slow" || ex[0].Value != 7.5 {
		t.Errorf("slowest exemplar = %+v, want job-slow@7.5", ex[0])
	}
	if ex[1].TraceID != "job-faster" {
		t.Errorf("bucket exemplar = %+v, want job-faster (newest replaces)", ex[1])
	}
	if ex[0].Time.IsZero() || time.Since(ex[0].Time) > time.Minute {
		t.Errorf("exemplar time not stamped: %v", ex[0].Time)
	}
}

func TestRegistryExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat", "latency", nil, L("stage", "b")).ObserveExemplar(2, "t2")
	reg.Histogram("lat", "latency", nil, L("stage", "a")).ObserveExemplar(1, "t1")
	reg.Histogram("lat", "latency", nil, L("stage", "c")) // no exemplars: omitted
	reg.Counter("hits", "hits").Inc()

	got := reg.Exemplars("lat")
	if len(got) != 2 {
		t.Fatalf("series = %+v, want 2", got)
	}
	if got[0].Labels[0].Value != "a" || got[1].Labels[0].Value != "b" {
		t.Errorf("series order wrong: %+v", got)
	}
	if got[0].Exemplars[0].TraceID != "t1" {
		t.Errorf("exemplar = %+v, want t1", got[0].Exemplars[0])
	}
	if reg.Exemplars("hits") != nil {
		t.Error("Exemplars on a counter family should be nil")
	}
	if reg.Exemplars("missing") != nil {
		t.Error("Exemplars on a missing family should be nil")
	}
}

func TestObserveStagesRecordsTraceExemplar(t *testing.T) {
	reg := NewRegistry()
	tl := Timeline{Trace: "job-42", Spans: []SpanRecord{
		{ID: 1, Name: "analyze", Seconds: 3.2},
	}}
	ObserveStages(reg, tl)
	ObserveStages(reg, Timeline{Spans: []SpanRecord{{ID: 1, Name: "analyze", Seconds: 9}}})

	series := reg.Exemplars("ion_pipeline_stage_seconds")
	if len(series) != 1 || len(series[0].Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly the traced observation", series)
	}
	if series[0].Exemplars[0].TraceID != "job-42" {
		t.Errorf("trace id = %q, want job-42", series[0].Exemplars[0].TraceID)
	}
}
