package obs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeAssembly exercises the shape the ion pipeline produces: a
// root span with sequential children (extract, summarize) and a fan of
// concurrent diagnose spans started from the same parent context by
// parallel goroutines, as the analyzer does.
func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	rootCtx, root := StartSpan(ctx, "pipeline", L("trace", "ior-hard"))

	ectx, extract := StartSpan(rootCtx, "extract")
	_, mod := StartSpan(ectx, "extract_module", L("module", "POSIX"))
	mod.End()
	extract.End()

	var wg sync.WaitGroup
	for _, issue := range []string{"small-io", "rank0", "needless-sync"} {
		issue := issue
		wg.Add(1)
		go func() {
			defer wg.Done()
			dctx, d := StartSpan(rootCtx, "diagnose", L("issue", issue))
			_, l := StartSpan(dctx, "llm_complete", L("backend", "expertsim"))
			time.Sleep(time.Millisecond)
			l.End()
			d.End()
		}()
	}
	wg.Wait()

	_, sum := StartSpan(rootCtx, "summarize")
	sum.SetError(errors.New("boom"))
	sum.End()
	root.End()

	tl := tr.Timeline()
	if len(tl.Spans) != 10 {
		t.Fatalf("got %d spans, want 10", len(tl.Spans))
	}
	roots := tl.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want exactly one", roots)
	}
	rootRec := tl.Spans[0]
	if rootRec.ID != roots[0] || rootRec.Name != "pipeline" || rootRec.Attrs["trace"] != "ior-hard" {
		t.Errorf("first span = %+v, want the pipeline root", rootRec)
	}

	children := tl.Children(roots[0])
	if len(children) != 5 {
		t.Fatalf("root has %d children, want 5 (extract, 3×diagnose, summarize)", len(children))
	}
	if children[0].Name != "extract" {
		t.Errorf("first child = %q, want extract (timeline must be start-ordered)", children[0].Name)
	}
	if last := children[len(children)-1]; last.Name != "summarize" || last.Error != "boom" {
		t.Errorf("last child = %+v, want failed summarize", last)
	}
	seenIssues := map[string]bool{}
	for _, c := range children {
		if c.Name != "diagnose" {
			continue
		}
		seenIssues[c.Attrs["issue"]] = true
		kids := tl.Children(c.ID)
		if len(kids) != 1 || kids[0].Name != "llm_complete" {
			t.Errorf("diagnose %q children = %+v, want one llm_complete", c.Attrs["issue"], kids)
		}
		if kids[0].Seconds <= 0 {
			t.Errorf("llm span under %q has non-positive duration", c.Attrs["issue"])
		}
	}
	if len(seenIssues) != 3 {
		t.Errorf("concurrent diagnose spans recorded %d distinct issues, want 3", len(seenIssues))
	}

	// The root must cover its children: it started first and ended last.
	for _, c := range children {
		if c.Start.Before(rootRec.Start) {
			t.Errorf("child %s starts before the root", c.Name)
		}
	}
	if rootRec.Seconds < children[len(children)-1].Seconds {
		t.Errorf("root duration %v shorter than its last child", rootRec.Seconds)
	}
}

// TestStartSpanWithoutTracer checks the no-op path: library code keeps
// working with an un-instrumented context.
func TestStartSpanWithoutTracer(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "extract")
	if ctx != context.Background() {
		t.Error("no-op StartSpan should return the context unchanged")
	}
	s.Annotate("k", "v")
	s.SetError(errors.New("ignored"))
	s.End() // must not panic
}

func TestObserveStagesAndSummarize(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 4; i++ {
		_, s := StartSpan(ctx, "diagnose")
		s.End()
	}
	_, e := StartSpan(ctx, "extract")
	e.End()
	tl := tr.Timeline()

	reg := NewRegistry()
	ObserveStages(reg, tl)
	if n := reg.Histogram("ion_pipeline_stage_seconds", "", nil, L("stage", "diagnose")).Count(); n != 4 {
		t.Errorf("diagnose histogram count = %d, want 4", n)
	}

	stats := Summarize(tl)
	if len(stats) != 2 || stats[0].Stage != "diagnose" || stats[1].Stage != "extract" {
		t.Fatalf("summary = %+v, want [diagnose extract]", stats)
	}
	if stats[0].Count != 4 || stats[0].P50 > stats[0].P99 || stats[0].P99 > stats[0].Max {
		t.Errorf("diagnose stats inconsistent: %+v", stats[0])
	}
}
