package obs

import (
	"fmt"
	"sync"
	"time"
)

// CPUProfileGuard coordinates ownership of the runtime's CPU profiler.
// The runtime allows exactly one pprof.StartCPUProfile at a time, but
// ionserve has two would-be owners: the continuous profiler (always-on
// rolling windows) and the flight recorder (a bounded profile inside an
// incident capture). The guard serializes them with a priority rule:
// the continuous profiler acquires opportunistically and registers a
// yield callback; an incident capture acquires preemptively, which
// invokes the holder's yield (asking it to stop its window early) and
// then waits for the release. The yielded side simply resumes on its
// next cycle — neither side ever sees the runtime's "cpu profiling
// already in use" error.
//
// All methods are safe for concurrent use. The zero value is not
// usable; call NewCPUProfileGuard.
type CPUProfileGuard struct {
	mu     sync.Mutex
	sem    chan struct{} // capacity 1; holds the token while the guard is free
	holder string
	yield  func() // non-nil while the current holder is preemptible
}

// NewCPUProfileGuard returns a free guard.
func NewCPUProfileGuard() *CPUProfileGuard {
	g := &CPUProfileGuard{sem: make(chan struct{}, 1)}
	g.sem <- struct{}{}
	return g
}

// Holder returns the name of the current owner, or "" when free.
func (g *CPUProfileGuard) Holder() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.holder
}

// TryAcquire takes the guard if it is free, registering yield as the
// preemption callback (nil means the acquisition cannot be preempted).
// It never blocks: when the guard is held, ok is false and the caller
// should skip this cycle. The returned release is idempotent.
func (g *CPUProfileGuard) TryAcquire(owner string, yield func()) (release func(), ok bool) {
	select {
	case <-g.sem:
		g.mu.Lock()
		g.holder, g.yield = owner, yield
		g.mu.Unlock()
		return g.releaseFunc(), true
	default:
		return nil, false
	}
}

// Acquire takes the guard, preempting a yieldable holder: the holder's
// yield callback is invoked (once, on its own goroutine) and Acquire
// waits up to wait for the release. It fails when the guard is held by
// a non-preemptible owner past the deadline — e.g. a second concurrent
// incident capture. The returned release is idempotent.
func (g *CPUProfileGuard) Acquire(owner string, wait time.Duration) (release func(), err error) {
	g.mu.Lock()
	if y := g.yield; y != nil {
		// Consume the callback so a racing second Acquire cannot invoke
		// it twice; run it off-lock in case it re-enters the guard.
		g.yield = nil
		go y()
	}
	holder := g.holder
	g.mu.Unlock()

	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-g.sem:
		g.mu.Lock()
		g.holder, g.yield = owner, nil
		g.mu.Unlock()
		return g.releaseFunc(), nil
	case <-t.C:
		return nil, fmt.Errorf("obs: cpu profiler busy (held by %q)", holder)
	}
}

// releaseFunc builds the once-only release for the current acquisition.
func (g *CPUProfileGuard) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.holder, g.yield = "", nil
			g.mu.Unlock()
			g.sem <- struct{}{}
		})
	}
}
