package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: spanning sub-millisecond parses to multi-minute LLM calls.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120,
}

// Registry is a concurrency-safe collection of metric families.
// Instrument getters (Counter, Gauge, Histogram) are get-or-create:
// calling them repeatedly with the same name and labels returns the
// same instrument, so call sites need no package-level variables.
// Registering the same name with a different type panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name, help, typ string
	series          map[string]metric // rendered-label key → instrument
	fn              func() float64    // callback families have no series
}

// metric is the value side of one labeled series.
type metric interface {
	write(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) get(name, help, typ string, labels []Label, make func() metric) metric {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != typ || f.fn != nil {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (registered as %s)", name, typ, f.typ))
	}
	m, ok := f.series[key]
	if !ok {
		m = make()
		f.series[key] = m
	}
	return m
}

// Counter returns the monotonically increasing counter for the given
// name and label set, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the settable gauge for the given name and label set,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for the given name and
// label set, creating it on first use. buckets are ascending upper
// bounds in seconds; nil means DefBuckets. The bucket layout is fixed
// by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.get(name, help, "histogram", labels, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// registerFunc installs a callback-backed, label-less family: the value
// is read at exposition time, so the registry and the owner of the
// underlying state (e.g. jobs.Service) can never disagree.
func (r *Registry) registerFunc(name, help, typ string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: callback metric %q registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, fn: fn}
}

// GaugeFunc registers a gauge whose value is pulled from fn at
// exposition time. The callback must be safe for concurrent use and
// must not call back into this registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "gauge", fn)
}

// CounterFunc registers a counter whose cumulative value is pulled from
// fn at exposition time. The same callback rules as GaugeFunc apply.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "counter", fn)
}

// WriteTo renders every family in Prometheus text exposition format
// (families and series in lexicographic order, so output is stable).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].write(&b, f.name, k)
		}
	}
	r.mu.Unlock()

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Sample is one scraped series value: a point-in-time snapshot of a
// counter or gauge. Histogram families are flattened into derived
// samples (see Gather), so consumers such as the time-series store in
// obs/series never need to understand bucket layouts.
type Sample struct {
	// Name is the family name, possibly suffixed (_count, _sum) for
	// histogram-derived samples.
	Name string
	// Labels are the series labels, sorted by key. Histogram quantile
	// samples carry an extra quantile label ("0.5", "0.95", "0.99").
	Labels []Label
	// Kind is "counter" or "gauge"; scrapers convert counters to rates.
	Kind string
	// Value is the current value.
	Value float64
}

// SeriesKey renders the sample identity as name plus its sorted label
// set (`name{k="v",...}`), the canonical key scrapers index by.
func (s Sample) SeriesKey() string { return s.Name + renderLabels(s.Labels) }

// gatherQuantiles are the quantile samples derived from each histogram
// family at Gather time.
var gatherQuantiles = []float64{0.5, 0.95, 0.99}

// Gather snapshots every series in the registry as flat samples, in
// deterministic order (families and series lexicographic, matching
// WriteTo). Counters and gauges yield one sample each; callback
// families are read through their callback; histogram series yield a
// _count counter, a _sum counter, and one gauge per quantile in
// {0.5, 0.95, 0.99} (estimated over all observations since process
// start, the same interpolation Quantile uses).
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []Sample
	for _, name := range names {
		f := r.families[name]
		if f.fn != nil {
			out = append(out, Sample{Name: f.name, Kind: f.typ, Value: f.fn()})
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			labels := parseLabelKey(k)
			switch m := f.series[k].(type) {
			case *Counter:
				out = append(out, Sample{Name: f.name, Labels: labels, Kind: "counter", Value: m.Value()})
			case *Gauge:
				out = append(out, Sample{Name: f.name, Labels: labels, Kind: "gauge", Value: m.Value()})
			case *Histogram:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: labels, Kind: "counter", Value: float64(m.Count())},
					Sample{Name: f.name + "_sum", Labels: labels, Kind: "counter", Value: m.Sum()})
				for _, q := range gatherQuantiles {
					ql := append(append([]Label(nil), labels...), L("quantile", formatValue(q)))
					sort.Slice(ql, func(i, j int) bool { return ql[i].Key < ql[j].Key })
					out = append(out, Sample{Name: f.name, Labels: ql, Kind: "gauge", Value: m.Quantile(q)})
				}
			}
		}
	}
	return out
}

// parseLabelKey decodes a rendered label string (`{k="v",...}` or "")
// back into sorted label pairs, reversing renderLabels including its
// escaping.
func parseLabelKey(key string) []Label {
	if key == "" {
		return nil
	}
	var out []Label
	s := key[1 : len(key)-1] // strip { }
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			break
		}
		k := s[:eq]
		s = s[eq+2:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			s = ""
		}
		out = append(out, L(k, b.String()))
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// Histogram counts observations into fixed cumulative buckets and
// tracks their sum, the Prometheus histogram model.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds
	counts  []uint64  // len(bounds)+1; last is +Inf
	sum     float64
	observe uint64
	// exemplars holds the latest exemplar per bucket (parallel to
	// counts), allocated on the first ObserveExemplar.
	exemplars []Exemplar
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.observe++
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.observe
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket
// counts by linear interpolation within the containing bucket, the
// same estimate Prometheus's histogram_quantile computes. It returns 0
// with no observations; values landing in the +Inf bucket report the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.observe == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(h.observe)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	bounds, counts, sum, total := h.bounds, append([]uint64(nil), h.counts...), h.sum, h.observe
	h.mu.Unlock()
	var cum uint64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, formatValue(bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// renderLabels serializes a label set as `{k="v",...}` with keys
// sorted, or "" for no labels. This string doubles as the series key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLE splices an le="bound" label into a rendered label string.
func withLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
