package obs

import (
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildInfo identifies the running build: the answer to "which binary
// produced this profile window / incident bundle / metric scrape".
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain go build,
	// a tag for released builds), with the VCS revision appended when
	// the build embedded one.
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// OS and Arch are the build target.
	OS   string `json:"goos"`
	Arch string `json:"goarch"`
}

// String renders the build identity for dashboard headers:
// "ion abc123def456 (go1.24.0 linux/amd64)".
func (b BuildInfo) String() string {
	return "ion " + b.Version + " (" + b.GoVersion + " " + b.OS + "/" + b.Arch + ")"
}

// GetBuildInfo reads the build metadata embedded in the running binary.
func GetBuildInfo() BuildInfo {
	bi := BuildInfo{
		Version:   "unknown",
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" {
		bi.Version = v
	}
	var revision, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		short := revision
		if modified == "true" {
			revision += "-dirty"
		}
		switch {
		case bi.Version == "(devel)" || bi.Version == "unknown":
			bi.Version = revision
		case strings.Contains(bi.Version, short):
			// Pseudo-versions already embed the revision; appending it
			// again would just repeat the hash.
		default:
			bi.Version += "+" + revision
		}
	}
	return bi
}

// RegisterBuildInfo installs the ion_build_info gauge: constant value 1
// with the build identity as labels, the standard join key that makes
// profile windows, incident bundles, and alert firings attributable to
// a specific binary. It returns the info for direct display (dashboard
// headers). Call once per registry.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := GetBuildInfo()
	reg.Gauge("ion_build_info",
		"Build metadata of the running binary; the value is always 1.",
		L("version", bi.Version), L("go_version", bi.GoVersion),
		L("goos", bi.OS), L("goarch", bi.Arch)).Set(1)
	return bi
}
