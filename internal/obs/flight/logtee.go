package flight

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"
)

// logRecord is one captured log line: the ring stores fully rendered
// lines so a later Capture needs no access to the original attrs.
type logRecord struct {
	t     time.Time
	level slog.Level
	line  string // "message key=value key=value"
}

// logRing is a fixed-capacity ring of recent log records. Memory is
// capped by construction: the backing slice is allocated once and
// records are overwritten in place.
type logRing struct {
	mu   sync.Mutex
	recs []logRecord
	head int // index of the oldest record
	n    int // live records
}

func newLogRing(capacity int) *logRing {
	return &logRing{recs: make([]logRecord, capacity)}
}

// add appends a record, evicting the oldest when full.
func (r *logRing) add(rec logRecord) {
	r.mu.Lock()
	if r.n < len(r.recs) {
		r.recs[(r.head+r.n)%len(r.recs)] = rec
		r.n++
	} else {
		r.recs[r.head] = rec
		r.head = (r.head + 1) % len(r.recs)
	}
	r.mu.Unlock()
}

// snapshot copies the live records, oldest first.
func (r *logRing) snapshot() []logRecord {
	r.mu.Lock()
	out := make([]logRecord, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.recs[(r.head+i)%len(r.recs)]
	}
	r.mu.Unlock()
	return out
}

func (r *logRing) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// linePool recycles the byte buffers log lines are rendered into, so
// the hot path's only allocation is the final string.
var linePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// teeHandler is a slog.Handler that records every log line into the
// recorder's ring and forwards to the wrapped handler. It is always
// enabled at debug and above: the ring keeps records the sink's level
// would drop, so an incident bundle carries more context than stderr
// ever showed.
type teeHandler struct {
	ring   *logRing
	next   slog.Handler
	prefix string // rendered WithAttrs attrs, " key=value" each
	group  string // dotted group prefix for subsequent attr keys
}

// LogHandler wraps next so every record is also retained in the
// recorder's in-memory ring. Pass the result to slog.New for the
// process root logger.
func (r *Recorder) LogHandler(next slog.Handler) slog.Handler {
	return &teeHandler{ring: r.logs, next: next}
}

func (h *teeHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	bp := linePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, rec.Message...)
	b = append(b, h.prefix...)
	rec.Attrs(func(a slog.Attr) bool {
		b = appendAttr(b, h.group, a)
		return true
	})
	h.ring.add(logRecord{t: rec.Time, level: rec.Level, line: string(b)})
	*bp = b
	linePool.Put(bp)
	if h.next != nil && h.next.Enabled(ctx, rec.Level) {
		return h.next.Handle(ctx, rec)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	b := []byte(h.prefix)
	for _, a := range attrs {
		b = appendAttr(b, h.group, a)
	}
	next := h.next
	if next != nil {
		next = next.WithAttrs(attrs)
	}
	return &teeHandler{ring: h.ring, next: next, prefix: string(b), group: h.group}
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	next := h.next
	if next != nil {
		next = next.WithGroup(name)
	}
	return &teeHandler{ring: h.ring, next: next, prefix: h.prefix, group: h.group + name + "."}
}

// appendAttr renders " key=value" without allocating for the common
// attribute kinds (string, int, uint, float, bool, time). Rare kinds
// fall back to the Value's formatter.
func appendAttr(b []byte, group string, a slog.Attr) []byte {
	if a.Value.Kind() == slog.KindGroup {
		sub := group + a.Key + "."
		for _, ga := range a.Value.Group() {
			b = appendAttr(b, sub, ga)
		}
		return b
	}
	b = append(b, ' ')
	b = append(b, group...)
	b = append(b, a.Key...)
	b = append(b, '=')
	v := a.Value.Resolve()
	switch v.Kind() {
	case slog.KindString:
		b = append(b, v.String()...)
	case slog.KindInt64:
		b = strconv.AppendInt(b, v.Int64(), 10)
	case slog.KindUint64:
		b = strconv.AppendUint(b, v.Uint64(), 10)
	case slog.KindFloat64:
		b = strconv.AppendFloat(b, v.Float64(), 'g', -1, 64)
	case slog.KindBool:
		b = strconv.AppendBool(b, v.Bool())
	case slog.KindTime:
		b = v.Time().AppendFormat(b, time.RFC3339Nano)
	case slog.KindDuration:
		b = append(b, v.Duration().String()...)
	default:
		b = fmt.Appendf(b, "%v", v.Any())
	}
	return b
}
