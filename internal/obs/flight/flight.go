// Package flight is ionserve's flight recorder: always-on, bounded-cost
// capture of what the process was doing, snapshotted into an incident
// bundle the moment something goes wrong. It keeps three fixed-size
// in-memory rings — recent structured log records (a tee slog.Handler
// wrapping the service logger), tail-sampled completed span timelines
// (the slowest-N roots per operation, so the p99 job that trips an
// alert is still in memory), and periodic metric snapshots — and on
// Capture writes them together with goroutine/heap/CPU profiles,
// current alert states, and redacted config as a tar.gz bundle.
// Captures are singleflighted and rate-limited so an alert storm cannot
// stack profilers, and bundles on disk are bounded by count and bytes.
//
// Like the rest of the telemetry layer the package is stdlib-only.
package flight

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"ion/internal/obs"
)

// Capture refusal reasons, surfaced to callers so the HTTP layer can
// map them (429 for rate limiting, 409 for an in-flight capture).
var (
	// ErrRateLimited means a bundle was captured too recently; the
	// evidence it holds covers this incident too.
	ErrRateLimited = errors.New("flight: capture rate-limited, recent bundle already covers this window")
	// ErrCaptureInFlight means another capture is running right now.
	ErrCaptureInFlight = errors.New("flight: a capture is already in flight")
	// ErrDisabled means the recorder has no incident directory.
	ErrDisabled = errors.New("flight: no incident directory configured")
)

// Options configures a Recorder. Every bound has a default; the zero
// Options (plus Dir) is a working recorder.
type Options struct {
	// Dir is where incident bundles land. Empty disables Capture (the
	// rings still run, List is empty).
	Dir string
	// LogRing bounds retained log records; 0 means the default (512).
	LogRing int
	// SpansPerOp bounds retained timelines per root operation; 0 means
	// the default (8).
	SpansPerOp int
	// MaxOps bounds distinct root operations tracked; 0 means the
	// default (32).
	MaxOps int
	// SnapshotInterval is the metric-snapshot cadence of the Start loop;
	// 0 means the default (15s).
	SnapshotInterval time.Duration
	// SnapshotRing bounds retained metric snapshots; 0 means the
	// default (20).
	SnapshotRing int
	// CPUProfile is how long Capture profiles the CPU; 0 skips the CPU
	// profile entirely (negative means the default of 5s is NOT applied;
	// use exactly 0 to disable, leave unset for the caller default).
	CPUProfile time.Duration
	// Cooldown is the minimum gap between captures; 0 means the default
	// (1m). Firings inside the window return ErrRateLimited.
	Cooldown time.Duration
	// MaxBundles bounds bundles kept on disk; 0 means the default (16).
	MaxBundles int
	// MaxBundleBytes bounds the total bytes of retained bundles; 0 means
	// the default (256 MiB). The newest bundle is never deleted.
	MaxBundleBytes int64
	// Registry is snapshotted into the metrics ring and receives the
	// recorder's own counters; nil uses a private registry.
	Registry *obs.Registry
	// CPUGuard coordinates CPU-profiler ownership with the continuous
	// profiler: an incident capture preempts a running profile window
	// (the window ends early and the profiler resumes next cycle). Nil
	// uses a private guard, i.e. no coordination needed.
	CPUGuard *obs.CPUProfileGuard
	// Config is included in every bundle with secret-looking values
	// redacted.
	Config map[string]string
	// Logger receives recorder lifecycle logs; nil discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.LogRing <= 0 {
		o.LogRing = 512
	}
	if o.SpansPerOp <= 0 {
		o.SpansPerOp = 8
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 32
	}
	if o.SnapshotInterval <= 0 {
		o.SnapshotInterval = 15 * time.Second
	}
	if o.SnapshotRing <= 0 {
		o.SnapshotRing = 20
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Minute
	}
	if o.MaxBundles <= 0 {
		o.MaxBundles = 16
	}
	if o.MaxBundleBytes <= 0 {
		o.MaxBundleBytes = 256 << 20
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.CPUGuard == nil {
		o.CPUGuard = obs.NewCPUProfileGuard()
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
}

// Manifest describes one incident bundle: what was captured, when, and
// why. It is the first entry inside the bundle and the payload of the
// incidents API.
type Manifest struct {
	ID              string    `json:"id"`
	CapturedAt      time.Time `json:"captured_at"`
	Reason          string    `json:"reason"`
	SizeBytes       int64     `json:"size_bytes,omitempty"`
	Files           []string  `json:"files"`
	LogRecords      int       `json:"log_records"`
	SpanTimelines   int       `json:"span_timelines"`
	MetricSnapshots int       `json:"metric_snapshots"`
	// Notes records non-fatal capture problems (e.g. the CPU profiler
	// was busy), so a partial bundle explains itself.
	Notes []string `json:"notes,omitempty"`
}

// metricSnapshot is one periodic Registry.Gather, stamped.
type metricSnapshot struct {
	t       time.Time
	samples []obs.Sample
}

// Recorder is the flight recorder. All methods are safe for concurrent
// use.
type Recorder struct {
	opts  Options
	logs  *logRing
	spans *spanSampler

	captured   *obs.Counter
	suppressed *obs.Counter

	alertsFn      func() any // optional: current alert states for the bundle
	profWindowsFn func() any // optional: recent profile windows for the bundle
	ledgerTailFn  func() any // optional: recent LLM ledger entries for the bundle
	qualityFn     func() any // optional: recent diagnosis-quality scorecards for the bundle

	mu        sync.Mutex
	snaps     []metricSnapshot // ring storage
	snapHead  int
	snapN     int
	manifests []Manifest // bundles on disk, oldest first
	capturing bool
	last      time.Time // start of the most recent capture

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New builds a Recorder, creating Dir if needed and re-indexing any
// bundles a previous process left there.
func New(opts Options) (*Recorder, error) {
	opts.applyDefaults()
	r := &Recorder{
		opts:  opts,
		logs:  newLogRing(opts.LogRing),
		spans: newSpanSampler(opts.SpansPerOp, opts.MaxOps),
		snaps: make([]metricSnapshot, opts.SnapshotRing),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	r.captured = opts.Registry.Counter("ion_incidents_captured_total",
		"Incident bundles written by the flight recorder.")
	r.suppressed = opts.Registry.Counter("ion_incidents_suppressed_total",
		"Capture requests refused by rate limiting or an in-flight capture.")
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: creating incident dir: %w", err)
		}
		if err := r.reindex(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// SetAlertsFunc installs the callback whose result is marshaled into
// each bundle's alerts.json (typically series.Store.Alerts). Call
// before Start.
func (r *Recorder) SetAlertsFunc(fn func() any) { r.alertsFn = fn }

// SetProfileWindowsFn installs the callback whose result is marshaled
// into each bundle's profile_windows.json (typically the continuous
// profiler's recent decoded windows, so an incident bundle shows where
// CPU and heap went in the minutes before the alert). Call before
// Start.
func (r *Recorder) SetProfileWindowsFn(fn func() any) { r.profWindowsFn = fn }

// SetLedgerTailFn installs the callback whose result is marshaled into
// each bundle's llm_ledger.json (typically the LLM audit ledger's
// recent tail, so a backend-degradation incident shows exactly which
// calls failed, how slowly, and what they cost — hashes and accounting
// only unless text capture was opted into). Call before Start.
func (r *Recorder) SetLedgerTailFn(fn func() any) { r.ledgerTailFn = fn }

// SetQualityScorecardsFn installs the callback whose result is
// marshaled into each bundle's quality_scorecards.json (typically the
// quality store's recent tail, so a verdict-drift or flip-rate
// incident carries the disagreeing scorecards that drove it). Call
// before Start.
func (r *Recorder) SetQualityScorecardsFn(fn func() any) { r.qualityFn = fn }

// OfferTimeline feeds one completed span timeline to the tail-sampler.
func (r *Recorder) OfferTimeline(tl obs.Timeline) { r.spans.Offer(tl) }

// Start launches the periodic metric-snapshot loop. Stop it with Stop;
// Start twice is a no-op.
func (r *Recorder) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opts.SnapshotInterval)
		defer t.Stop()
		r.Snapshot(time.Now())
		for {
			select {
			case <-r.stop:
				return
			case now := <-t.C:
				r.Snapshot(now)
			}
		}
	}()
	r.opts.Logger.Info("flight recorder running",
		"dir", r.opts.Dir, "log_ring", r.opts.LogRing,
		"spans_per_op", r.opts.SpansPerOp, "snapshot_interval", r.opts.SnapshotInterval.String(),
		"cooldown", r.opts.Cooldown.String())
}

// Stop halts the snapshot loop. Safe without Start and safe twice.
func (r *Recorder) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

// Snapshot gathers the registry once into the metrics ring. The Start
// loop calls it on its cadence; tests call it to control time.
func (r *Recorder) Snapshot(now time.Time) {
	samples := r.opts.Registry.Gather()
	r.mu.Lock()
	snap := metricSnapshot{t: now, samples: samples}
	if r.snapN < len(r.snaps) {
		r.snaps[(r.snapHead+r.snapN)%len(r.snaps)] = snap
		r.snapN++
	} else {
		r.snaps[r.snapHead] = snap
		r.snapHead = (r.snapHead + 1) % len(r.snaps)
	}
	r.mu.Unlock()
}

// List returns the manifests of the bundles on disk, newest first.
func (r *Recorder) List() []Manifest {
	r.mu.Lock()
	out := make([]Manifest, len(r.manifests))
	for i, m := range r.manifests {
		out[len(out)-1-i] = m
	}
	r.mu.Unlock()
	return out
}

// Get returns the manifest of one bundle by id.
func (r *Recorder) Get(id string) (Manifest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.manifests {
		if m.ID == id {
			return m, true
		}
	}
	return Manifest{}, false
}

// Open opens a bundle's tar.gz by id for streaming to a client.
func (r *Recorder) Open(id string) (io.ReadCloser, int64, error) {
	m, ok := r.Get(id)
	if !ok {
		return nil, 0, fmt.Errorf("flight: no bundle %q", id)
	}
	f, err := os.Open(filepath.Join(r.opts.Dir, m.ID+".tar.gz"))
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// Capture snapshots the process into a new incident bundle. It is
// singleflighted (a concurrent call returns ErrCaptureInFlight) and
// rate-limited (a call within Cooldown of the previous capture returns
// ErrRateLimited): an alert storm produces one bundle, not a pile of
// stacked profilers.
func (r *Recorder) Capture(reason string) (Manifest, error) {
	if r.opts.Dir == "" {
		return Manifest{}, ErrDisabled
	}
	now := time.Now()
	r.mu.Lock()
	if r.capturing {
		r.mu.Unlock()
		r.suppressed.Inc()
		return Manifest{}, ErrCaptureInFlight
	}
	if !r.last.IsZero() && now.Sub(r.last) < r.opts.Cooldown {
		r.mu.Unlock()
		r.suppressed.Inc()
		return Manifest{}, ErrRateLimited
	}
	r.capturing = true
	r.last = now
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.capturing = false
		r.mu.Unlock()
	}()

	m, err := r.capture(now.UTC(), reason)
	if err != nil {
		r.opts.Logger.Error("incident capture failed", "reason", reason, "err", err)
		return Manifest{}, err
	}
	r.captured.Inc()
	r.opts.Logger.Warn("incident bundle captured",
		"id", m.ID, "reason", reason, "bytes", m.SizeBytes,
		"log_records", m.LogRecords, "span_timelines", m.SpanTimelines)
	r.mu.Lock()
	r.manifests = append(r.manifests, m)
	r.mu.Unlock()
	r.enforceRetention()
	return m, nil
}

// capture builds and writes one bundle.
func (r *Recorder) capture(now time.Time, reason string) (Manifest, error) {
	m := Manifest{
		ID:         fmt.Sprintf("inc-%s-%s", now.Format("20060102T150405.000"), sanitize(reason)),
		CapturedAt: now,
		Reason:     reason,
	}

	type entry struct {
		name string
		data []byte
	}
	var entries []entry
	add := func(name string, data []byte) {
		entries = append(entries, entry{name, data})
		m.Files = append(m.Files, name)
	}

	// Goroutine dump (text, full stacks) and heap profile (pprof proto).
	var buf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&buf, 2)
		add("goroutines.txt", append([]byte(nil), buf.Bytes()...))
	}
	buf.Reset()
	if p := pprof.Lookup("heap"); p != nil {
		p.WriteTo(&buf, 0)
		add("heap.pprof", append([]byte(nil), buf.Bytes()...))
	}

	// CPU profile: optional, bounded, and owner-aware. The shared guard
	// preempts the continuous profiler (its window ends early and it
	// resumes next cycle); a profiler the guard does not manage — e.g.
	// someone on /debug/pprof/profile — still degrades to a note, never
	// a failed capture.
	if r.opts.CPUProfile > 0 {
		release, err := r.opts.CPUGuard.Acquire("incident-capture", 3*time.Second)
		if err != nil {
			m.Notes = append(m.Notes, "cpu profile unavailable: "+err.Error())
		} else {
			buf.Reset()
			if err := pprof.StartCPUProfile(&buf); err != nil {
				m.Notes = append(m.Notes, "cpu profile unavailable: "+err.Error())
			} else {
				select {
				case <-time.After(r.opts.CPUProfile):
				case <-r.stop:
				}
				pprof.StopCPUProfile()
				add("cpu.pprof", append([]byte(nil), buf.Bytes()...))
			}
			release()
		}
	}

	// The three rings.
	logs := r.logs.snapshot()
	m.LogRecords = len(logs)
	add("logs.jsonl", renderLogs(logs))

	spans := r.spans.snapshot()
	for _, items := range spans {
		m.SpanTimelines += len(items)
	}
	if data, err := json.MarshalIndent(spans, "", " "); err == nil {
		add("spans.json", data)
	}

	snaps := r.snapshotRing()
	m.MetricSnapshots = len(snaps)
	add("metrics.json", renderSnapshots(snaps))

	// Alert states and redacted config.
	if r.alertsFn != nil {
		if data, err := json.MarshalIndent(r.alertsFn(), "", " "); err == nil {
			add("alerts.json", data)
		}
	}
	if r.profWindowsFn != nil {
		if data, err := json.MarshalIndent(r.profWindowsFn(), "", " "); err == nil {
			add("profile_windows.json", data)
		}
	}
	if r.ledgerTailFn != nil {
		if data, err := json.MarshalIndent(r.ledgerTailFn(), "", " "); err == nil {
			add("llm_ledger.json", data)
		}
	}
	if r.qualityFn != nil {
		if data, err := json.MarshalIndent(r.qualityFn(), "", " "); err == nil {
			add("quality_scorecards.json", data)
		}
	}
	if len(r.opts.Config) > 0 {
		if data, err := json.MarshalIndent(Redact(r.opts.Config), "", " "); err == nil {
			add("config.json", data)
		}
	}

	manifestData, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return Manifest{}, err
	}

	// Write manifest first, then the entries, to a temp file renamed
	// into place so List never sees a half-written bundle.
	path := filepath.Join(r.opts.Dir, m.ID+".tar.gz")
	tmp, err := os.CreateTemp(r.opts.Dir, ".capture-*")
	if err != nil {
		return Manifest{}, err
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	tw := tar.NewWriter(zw)
	write := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := write("manifest.json", manifestData); err != nil {
		tmp.Close()
		return Manifest{}, err
	}
	for _, e := range entries {
		if err := write(e.name, e.data); err != nil {
			tmp.Close()
			return Manifest{}, err
		}
	}
	if err := tw.Close(); err != nil {
		tmp.Close()
		return Manifest{}, err
	}
	if err := zw.Close(); err != nil {
		tmp.Close()
		return Manifest{}, err
	}
	if err := tmp.Close(); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return Manifest{}, err
	}
	if st, err := os.Stat(path); err == nil {
		m.SizeBytes = st.Size()
	}
	return m, nil
}

// snapshotRing copies the metric snapshots, oldest first.
func (r *Recorder) snapshotRing() []metricSnapshot {
	r.mu.Lock()
	out := make([]metricSnapshot, r.snapN)
	for i := 0; i < r.snapN; i++ {
		out[i] = r.snaps[(r.snapHead+i)%len(r.snaps)]
	}
	r.mu.Unlock()
	return out
}

// enforceRetention deletes the oldest bundles while either the count or
// total-bytes bound is exceeded. The newest bundle always survives.
func (r *Recorder) enforceRetention() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, m := range r.manifests {
		total += m.SizeBytes
	}
	for len(r.manifests) > 1 &&
		(len(r.manifests) > r.opts.MaxBundles || total > r.opts.MaxBundleBytes) {
		victim := r.manifests[0]
		if err := os.Remove(filepath.Join(r.opts.Dir, victim.ID+".tar.gz")); err != nil && !os.IsNotExist(err) {
			r.opts.Logger.Warn("deleting expired incident bundle", "id", victim.ID, "err", err)
		}
		total -= victim.SizeBytes
		r.manifests = r.manifests[1:]
		r.opts.Logger.Info("incident bundle expired", "id", victim.ID)
	}
}

// reindex rebuilds the manifest list from bundles already on disk, so a
// restarted service keeps serving earlier incidents.
func (r *Recorder) reindex() error {
	names, err := filepath.Glob(filepath.Join(r.opts.Dir, "inc-*.tar.gz"))
	if err != nil {
		return err
	}
	sort.Strings(names) // ids embed a UTC timestamp, so name order is time order
	for _, path := range names {
		m, err := readManifest(path)
		if err != nil {
			r.opts.Logger.Warn("skipping unreadable incident bundle", "path", path, "err", err)
			continue
		}
		if st, err := os.Stat(path); err == nil {
			m.SizeBytes = st.Size()
		}
		r.manifests = append(r.manifests, m)
	}
	return nil
}

// readManifest extracts manifest.json (always the first entry) from a
// bundle on disk.
func readManifest(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return Manifest{}, err
	}
	defer zr.Close()
	tr := tar.NewReader(zr)
	for {
		hdr, err := tr.Next()
		if err != nil {
			return Manifest{}, fmt.Errorf("no manifest.json in %s: %w", filepath.Base(path), err)
		}
		if hdr.Name != "manifest.json" {
			continue
		}
		var m Manifest
		if err := json.NewDecoder(io.LimitReader(tr, 1<<20)).Decode(&m); err != nil {
			return Manifest{}, err
		}
		return m, nil
	}
}

// renderLogs serializes the log ring as JSON lines, oldest first.
func renderLogs(recs []logRecord) []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	for _, rec := range recs {
		enc.Encode(struct {
			T     time.Time `json:"t"`
			Level string    `json:"level"`
			Line  string    `json:"line"`
		}{rec.t, rec.level.String(), rec.line})
	}
	return b.Bytes()
}

// renderSnapshots serializes the metric-snapshot ring, oldest first.
func renderSnapshots(snaps []metricSnapshot) []byte {
	type sample struct {
		Name   string            `json:"name"`
		Labels map[string]string `json:"labels,omitempty"`
		Kind   string            `json:"kind"`
		Value  float64           `json:"value"`
	}
	type snapshot struct {
		T       time.Time `json:"t"`
		Samples []sample  `json:"samples"`
	}
	out := make([]snapshot, 0, len(snaps))
	for _, sn := range snaps {
		ss := snapshot{T: sn.t, Samples: make([]sample, 0, len(sn.samples))}
		for _, sm := range sn.samples {
			var labels map[string]string
			if len(sm.Labels) > 0 {
				labels = make(map[string]string, len(sm.Labels))
				for _, l := range sm.Labels {
					labels[l.Key] = l.Value
				}
			}
			ss.Samples = append(ss.Samples, sample{Name: sm.Name, Labels: labels, Kind: sm.Kind, Value: sm.Value})
		}
		out = append(out, ss)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return nil
	}
	return data
}

// Redact returns a copy of cfg with values of secret-looking keys
// replaced, so bundles can be shared without leaking credentials.
func Redact(cfg map[string]string) map[string]string {
	out := make(map[string]string, len(cfg))
	for k, v := range cfg {
		if secretKey(k) && v != "" {
			out[k] = "[redacted]"
		} else {
			out[k] = v
		}
	}
	return out
}

// secretKey reports whether a config key looks like it holds a secret.
func secretKey(k string) bool {
	k = strings.ToLower(k)
	for _, marker := range []string{"key", "token", "secret", "password", "credential", "auth"} {
		if strings.Contains(k, marker) {
			return true
		}
	}
	return false
}

// sanitize maps a capture reason onto the id-safe alphabet.
func sanitize(s string) string {
	if s == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.Trim(b.String(), "-")
}
