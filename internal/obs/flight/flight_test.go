package flight

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/obs"
)

func testTimeline(name string, seconds float64) obs.Timeline {
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return obs.Timeline{
		Trace: "job-" + name,
		Spans: []obs.SpanRecord{
			{ID: 1, Name: name, Start: start, Seconds: seconds},
			{ID: 2, Parent: 1, Name: "analyze", Start: start, Seconds: seconds / 2},
		},
	}
}

func newTestRecorder(t *testing.T, opts Options) *Recorder {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	r, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestCaptureBundleContents(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ion_test_total", "test counter").Add(7)
	r := newTestRecorder(t, Options{
		Registry: reg,
		Config:   map[string]string{"addr": ":8080", "api_key": "sk-secret"},
	})
	r.SetAlertsFunc(func() any {
		return []map[string]string{{"rule": "JobFailureRatioHigh", "state": "firing"}}
	})

	log := slog.New(r.LogHandler(slog.NewTextHandler(io.Discard, nil)))
	log.Info("pipeline started", "trace", "job-abc")
	log.Error("llm call failed", "err", "boom")
	r.OfferTimeline(testTimeline("job", 3.5))
	r.Snapshot(time.Now())

	m, err := r.Capture("alert:JobFailureRatioHigh")
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if !strings.HasPrefix(m.ID, "inc-") || !strings.Contains(m.ID, "alert-jobfailureratiohigh") {
		t.Fatalf("unexpected bundle id %q", m.ID)
	}
	if m.LogRecords != 2 || m.SpanTimelines != 1 || m.MetricSnapshots != 1 {
		t.Fatalf("manifest counts = %d logs, %d spans, %d snapshots", m.LogRecords, m.SpanTimelines, m.MetricSnapshots)
	}

	files := readBundle(t, r, m.ID)
	for _, want := range []string{"manifest.json", "goroutines.txt", "heap.pprof", "logs.jsonl", "spans.json", "metrics.json", "alerts.json", "config.json"} {
		if _, ok := files[want]; !ok {
			t.Errorf("bundle missing %s (has %v)", want, m.Files)
		}
	}
	if _, ok := files["cpu.pprof"]; ok {
		t.Error("cpu.pprof present though CPUProfile was 0")
	}
	if got := string(files["goroutines.txt"]); !strings.Contains(got, "goroutine") {
		t.Errorf("goroutines.txt lacks stacks: %.120s", got)
	}
	if got := string(files["logs.jsonl"]); !strings.Contains(got, "llm call failed") || !strings.Contains(got, "err=boom") {
		t.Errorf("logs.jsonl missing captured record: %s", got)
	}
	if got := string(files["spans.json"]); !strings.Contains(got, "job-job") || !strings.Contains(got, "analyze") {
		t.Errorf("spans.json missing sampled timeline: %s", got)
	}
	if got := string(files["metrics.json"]); !strings.Contains(got, "ion_test_total") {
		t.Errorf("metrics.json missing gathered sample: %.200s", got)
	}
	if got := string(files["alerts.json"]); !strings.Contains(got, "JobFailureRatioHigh") {
		t.Errorf("alerts.json missing alert state: %s", got)
	}
	var cfg map[string]string
	if err := json.Unmarshal(files["config.json"], &cfg); err != nil {
		t.Fatalf("config.json: %v", err)
	}
	if cfg["api_key"] != "[redacted]" || cfg["addr"] != ":8080" {
		t.Errorf("config redaction wrong: %v", cfg)
	}
}

func TestCaptureRateLimitAndSingleflight(t *testing.T) {
	r := newTestRecorder(t, Options{Cooldown: time.Hour})
	if _, err := r.Capture("first"); err != nil {
		t.Fatalf("first Capture: %v", err)
	}
	if _, err := r.Capture("second"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second Capture err = %v, want ErrRateLimited", err)
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("bundles = %d, want 1", got)
	}
	if got := r.suppressed.Value(); got != 1 {
		t.Fatalf("suppressed counter = %v, want 1", got)
	}
}

func TestCaptureDisabledWithoutDir(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := r.Capture("x"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("err = %v, want ErrDisabled", err)
	}
}

func TestRetentionByCountAndBytes(t *testing.T) {
	r := newTestRecorder(t, Options{Cooldown: time.Nanosecond, MaxBundles: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		m, err := r.Capture("n" + string(rune('a'+i)))
		if err != nil {
			t.Fatalf("Capture %d: %v", i, err)
		}
		ids = append(ids, m.ID)
		time.Sleep(2 * time.Millisecond) // distinct timestamps => distinct ids
	}
	list := r.List()
	if len(list) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(list))
	}
	if list[0].ID != ids[3] || list[1].ID != ids[2] {
		t.Fatalf("retained %v, want newest two of %v", []string{list[0].ID, list[1].ID}, ids)
	}
	for _, old := range ids[:2] {
		if _, err := os.Stat(filepath.Join(r.opts.Dir, old+".tar.gz")); !os.IsNotExist(err) {
			t.Errorf("expired bundle %s still on disk (err=%v)", old, err)
		}
	}

	// Byte-bound retention: tiny budget keeps only the newest.
	r2 := newTestRecorder(t, Options{Cooldown: time.Nanosecond, MaxBundleBytes: 1})
	r2.Capture("one")
	time.Sleep(2 * time.Millisecond)
	m2, err := r2.Capture("two")
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if list := r2.List(); len(list) != 1 || list[0].ID != m2.ID {
		t.Fatalf("byte retention kept %v, want just %s", list, m2.ID)
	}
}

func TestReindexAfterRestart(t *testing.T) {
	dir := t.TempDir()
	r := newTestRecorder(t, Options{Dir: dir})
	m, err := r.Capture("before-restart")
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	r2 := newTestRecorder(t, Options{Dir: dir})
	list := r2.List()
	if len(list) != 1 || list[0].ID != m.ID || list[0].Reason != "before-restart" {
		t.Fatalf("reindexed list = %+v, want the pre-restart bundle", list)
	}
	rc, size, err := r2.Open(m.ID)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rc.Close()
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
}

func TestOpenRejectsUnknownID(t *testing.T) {
	r := newTestRecorder(t, Options{})
	for _, id := range []string{"nope", "../../etc/passwd", "inc-x/../../secret"} {
		if _, _, err := r.Open(id); err == nil {
			t.Errorf("Open(%q) succeeded, want error", id)
		}
	}
}

func TestLogRingWrapsAndKeepsBelowSinkLevel(t *testing.T) {
	r := newTestRecorder(t, Options{LogRing: 4})
	sink := slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelWarn})
	log := slog.New(r.LogHandler(sink))
	for i := 0; i < 6; i++ {
		log.Debug("debug line", "i", i)
	}
	recs := r.logs.snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if recs[0].line != "debug line i=2" || recs[3].line != "debug line i=5" {
		t.Fatalf("ring contents wrong: %q .. %q", recs[0].line, recs[3].line)
	}
}

func TestLogTeeWithAttrsAndGroups(t *testing.T) {
	r := newTestRecorder(t, Options{})
	log := slog.New(r.LogHandler(nil)).With("job", "j1").WithGroup("http").With("route", "/api")
	log.Info("served", "code", 200)
	recs := r.logs.snapshot()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	want := "served job=j1 http.route=/api http.code=200"
	if recs[0].line != want {
		t.Fatalf("line = %q, want %q", recs[0].line, want)
	}
}

func TestSpanSamplerKeepsSlowest(t *testing.T) {
	s := newSpanSampler(3, 2)
	for i, sec := range []float64{1, 5, 2, 9, 3, 0.5, 7} {
		tl := testTimeline("analyze", sec)
		tl.Trace = string(rune('a' + i))
		s.Offer(tl)
	}
	snap := s.snapshot()
	got := snap["analyze"]
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	if got[0].Seconds != 9 || got[1].Seconds != 7 || got[2].Seconds != 5 {
		t.Fatalf("retained %v, want slowest three (9,7,5)", []float64{got[0].Seconds, got[1].Seconds, got[2].Seconds})
	}

	// maxOps bound: a third distinct operation is dropped.
	s.Offer(testTimeline("other", 1))
	s.Offer(testTimeline("third", 1))
	if _, ok := s.snapshot()["third"]; ok {
		t.Error("third op retained despite maxOps=2")
	}
	if s.dropped != 1 {
		t.Errorf("dropped = %d, want 1", s.dropped)
	}
	// Timelines with no root span are ignored.
	s.Offer(obs.Timeline{Spans: []obs.SpanRecord{{ID: 2, Parent: 1, Name: "orphan"}}})
	if s.count() != 4 {
		t.Errorf("count = %d, want 4", s.count())
	}
}

func TestLogTeeAllocsPerRecord(t *testing.T) {
	r := newTestRecorder(t, Options{})
	h := r.LogHandler(nil)
	rec := slog.NewRecord(time.Now(), slog.LevelInfo, "job finished", 0)
	rec.AddAttrs(slog.String("job", "j-123"), slog.Int("attempts", 2), slog.Float64("seconds", 1.25))
	ctx := t.Context()
	h.Handle(ctx, rec) // warm the line pool
	allocs := testing.AllocsPerRun(1000, func() {
		h.Handle(ctx, rec)
	})
	if allocs > 1 {
		t.Fatalf("log tee allocates %.1f per record, want <= 1", allocs)
	}
}

func TestSpanSamplerAllocsOnRejection(t *testing.T) {
	s := newSpanSampler(2, 4)
	for _, sec := range []float64{10, 20} {
		s.Offer(testTimeline("analyze", sec))
	}
	fast := testTimeline("analyze", 0.001) // below the floor: always rejected
	allocs := testing.AllocsPerRun(1000, func() {
		s.Offer(fast)
	})
	if allocs > 1 {
		t.Fatalf("sampler rejection allocates %.1f per offer, want <= 1", allocs)
	}
}

func TestSnapshotRingWraps(t *testing.T) {
	r := newTestRecorder(t, Options{SnapshotRing: 3})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		r.Snapshot(base.Add(time.Duration(i) * time.Second))
	}
	snaps := r.snapshotRing()
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(snaps))
	}
	if !snaps[0].t.Equal(base.Add(2*time.Second)) || !snaps[2].t.Equal(base.Add(4*time.Second)) {
		t.Fatalf("snapshot window wrong: %v .. %v", snaps[0].t, snaps[2].t)
	}
}

func TestStartStop(t *testing.T) {
	r := newTestRecorder(t, Options{SnapshotInterval: time.Millisecond})
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(r.snapshotRing()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(r.snapshotRing()) == 0 {
		t.Fatal("snapshot loop never ticked")
	}
	r.Stop()
	r.Stop() // idempotent
}

func TestSanitize(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"alert:JobFailureRatioHigh", "alert-jobfailureratiohigh"},
		{"", "manual"},
		{"--weird??", "weird"},
		{strings.Repeat("x", 100), strings.Repeat("x", 48)},
	} {
		if got := sanitize(tc.in); got != tc.want {
			t.Errorf("sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// readBundle downloads and untars a bundle into name->contents.
func readBundle(t *testing.T, r *Recorder, id string) map[string][]byte {
	t.Helper()
	rc, _, err := r.Open(id)
	if err != nil {
		t.Fatalf("Open(%s): %v", id, err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read bundle: %v", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(zr)
	files := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle is not tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("reading %s: %v", hdr.Name, err)
		}
		files[hdr.Name] = body
	}
	return files
}
