package flight

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/obs"
	"ion/internal/obs/prof"
)

// TestCapturePreemptsContinuousProfiler is the CPU-ownership contract
// end to end: the continuous profiler is mid-window on the real runtime
// profiler when an incident capture arrives. The capture must preempt
// cleanly (cpu.pprof lands, no "unavailable" note), the profiler's
// shortened window must still be decoded and stored, and neither side
// may wedge.
func TestCapturePreemptsContinuousProfiler(t *testing.T) {
	if testing.Short() {
		t.Skip("real profiling in -short mode")
	}
	guard := obs.NewCPUProfileGuard()
	st, err := prof.OpenStore(prof.StoreOptions{Path: filepath.Join(t.TempDir(), "windows.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p, err := prof.New(prof.Options{
		Store:    st,
		Guard:    guard,
		Window:   10 * time.Second, // long enough that only a preemption ends it
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	// Wait for the profiler's first window to own the guard.
	deadline := time.Now().Add(5 * time.Second)
	for guard.Holder() != "continuous-profiler" {
		if time.Now().After(deadline) {
			t.Fatalf("continuous profiler never acquired the guard (holder %q)", guard.Holder())
		}
		time.Sleep(10 * time.Millisecond)
	}

	r := newTestRecorder(t, Options{CPUGuard: guard, CPUProfile: 100 * time.Millisecond})
	m, err := r.Capture("alert:HotFunctionRegression")
	if err != nil {
		t.Fatalf("Capture while the continuous profiler held the CPU: %v", err)
	}
	for _, note := range m.Notes {
		if strings.Contains(note, "cpu profile unavailable") {
			t.Fatalf("capture degraded instead of preempting: %v", m.Notes)
		}
	}
	files := readBundle(t, r, m.ID)
	if cpu, ok := files["cpu.pprof"]; !ok || len(cpu) == 0 {
		t.Fatalf("bundle missing cpu.pprof after preemption (files %v)", m.Files)
	}

	// The preempted window still landed (shortened, not lost).
	deadline = time.Now().Add(5 * time.Second)
	for {
		if w, ok := st.Latest(prof.KindCPU); ok {
			if w.DurationSeconds() >= 9 {
				t.Fatalf("window ran its full %vs despite the preemption", w.DurationSeconds())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("preempted CPU window never reached the store")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if guard.Holder() != "" {
		t.Fatalf("guard still held by %q after both sides finished", guard.Holder())
	}
}

// TestCaptureIncludesProfileWindows: bundles carry the continuous
// profiler's recent windows once the callback is installed.
func TestCaptureIncludesProfileWindows(t *testing.T) {
	r := newTestRecorder(t, Options{})
	r.SetProfileWindowsFn(func() any {
		return []prof.Window{{
			ID: "w-cpu-123", Kind: "cpu", Unit: "nanoseconds", Total: 5000,
			Functions: []prof.FuncStat{{Name: "ion.ParseText", Flat: 4000, FlatShare: 0.8}},
		}}
	})
	m, err := r.Capture("manual")
	if err != nil {
		t.Fatal(err)
	}
	files := readBundle(t, r, m.ID)
	data, ok := files["profile_windows.json"]
	if !ok {
		t.Fatalf("bundle missing profile_windows.json (files %v)", m.Files)
	}
	var ws []prof.Window
	if err := json.Unmarshal(data, &ws); err != nil {
		t.Fatalf("profile_windows.json: %v\n%s", err, data)
	}
	if len(ws) != 1 || ws[0].ID != "w-cpu-123" || ws[0].Functions[0].Name != "ion.ParseText" {
		t.Fatalf("profile_windows.json content wrong: %+v", ws)
	}
}
