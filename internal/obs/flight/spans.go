package flight

import (
	"sort"
	"sync"

	"ion/internal/obs"
)

// sampledTrace is one retained span timeline: the root duration it was
// ranked by plus the full tree.
type sampledTrace struct {
	Seconds  float64      `json:"seconds"`
	Timeline obs.Timeline `json:"timeline"`
}

// opSamples is the per-operation retention set: a min-heap on Seconds
// in a fixed-capacity slice, so the slowest K timelines survive and
// the common case — a completed trace faster than everything retained —
// is a single float comparison with no allocation.
type opSamples struct {
	items []sampledTrace // min-heap by Seconds, cap == K
}

// spanSampler tail-samples completed span timelines: for every root
// operation name it keeps the K slowest trees. A p99 job is by
// definition among the slowest, so the trace that trips a latency alert
// is still in memory when Capture runs.
type spanSampler struct {
	perOp  int
	maxOps int

	mu      sync.Mutex
	ops     map[string]*opSamples
	dropped int64 // timelines rejected by the maxOps bound
}

func newSpanSampler(perOp, maxOps int) *spanSampler {
	return &spanSampler{perOp: perOp, maxOps: maxOps, ops: make(map[string]*opSamples)}
}

// Offer considers one completed timeline for retention. The operation
// is the root span's name; the ranking key its duration. Timelines
// whose operation set is full and whose root is faster than everything
// retained are rejected without allocating.
func (s *spanSampler) Offer(tl obs.Timeline) {
	root, ok := rootSpan(tl)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.ops[root.Name]
	if !ok {
		if len(s.ops) >= s.maxOps {
			s.dropped++
			return
		}
		op = &opSamples{items: make([]sampledTrace, 0, s.perOp)}
		s.ops[root.Name] = op
	}
	if len(op.items) < s.perOp {
		op.items = append(op.items, sampledTrace{Seconds: root.Seconds, Timeline: tl})
		op.up(len(op.items) - 1)
		return
	}
	if root.Seconds <= op.items[0].Seconds {
		return // faster than the slowest-K floor: the no-alloc hot path
	}
	op.items[0] = sampledTrace{Seconds: root.Seconds, Timeline: tl}
	op.down(0)
}

// rootSpan finds the first parentless span of the timeline.
func rootSpan(tl obs.Timeline) (obs.SpanRecord, bool) {
	for _, r := range tl.Spans {
		if r.Parent == 0 {
			return r, true
		}
	}
	return obs.SpanRecord{}, false
}

func (o *opSamples) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if o.items[p].Seconds <= o.items[i].Seconds {
			return
		}
		o.items[p], o.items[i] = o.items[i], o.items[p]
		i = p
	}
}

func (o *opSamples) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(o.items) && o.items[l].Seconds < o.items[min].Seconds {
			min = l
		}
		if r < len(o.items) && o.items[r].Seconds < o.items[min].Seconds {
			min = r
		}
		if min == i {
			return
		}
		o.items[i], o.items[min] = o.items[min], o.items[i]
		i = min
	}
}

// snapshot copies the retained timelines, slowest first per operation,
// operations sorted by name.
func (s *spanSampler) snapshot() map[string][]sampledTrace {
	s.mu.Lock()
	out := make(map[string][]sampledTrace, len(s.ops))
	for name, op := range s.ops {
		items := append([]sampledTrace(nil), op.items...)
		sort.Slice(items, func(i, j int) bool { return items[i].Seconds > items[j].Seconds })
		out[name] = items
	}
	s.mu.Unlock()
	return out
}

// count returns the total retained timelines.
func (s *spanSampler) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, op := range s.ops {
		n += len(op.items)
	}
	return n
}
