package analysis

import (
	"testing"
	"testing/quick"

	"ion/internal/extractor"
	"ion/internal/knowledge"
	"ion/internal/table"
	"ion/internal/testutil"
)

func envFor(t *testing.T, workload string) *Env {
	t.Helper()
	out, _, err := testutil.Extracted(workload)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(out, knowledge.FromExtract(out))
}

func TestSmallIOOnIOREasy2K(t *testing.T) {
	r, err := SmallIO(envFor(t, "ior-easy-2k-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalOps != 8192 {
		t.Errorf("total ops = %d", r.TotalOps)
	}
	if r.TinyShare < 0.99 {
		t.Errorf("tiny share = %.3f", r.TinyShare)
	}
	if r.ConsecShare < 0.99 {
		t.Errorf("consec share = %.3f (sequential stream should aggregate)", r.ConsecShare)
	}
	if r.RPCSize != 4<<20 || r.StripeSize != 1<<20 {
		t.Errorf("hyperparams wrong: %+v", r)
	}
}

func TestSmallIOOnIORHard(t *testing.T) {
	r, err := SmallIO(envFor(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if r.ConsecShare > 0.01 {
		t.Errorf("strided stream must not look aggregatable: %.3f", r.ConsecShare)
	}
	if r.TinyShare < 0.99 {
		t.Errorf("tiny share = %.3f", r.TinyShare)
	}
}

func TestAlignmentShares(t *testing.T) {
	r2k, err := Alignment(envFor(t, "ior-easy-2k-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if r2k.FileShare < 0.99 || r2k.FileShare > 0.999 {
		t.Errorf("2k misalign share = %.4f, want ~0.998", r2k.FileShare)
	}
	r1m, err := Alignment(envFor(t, "ior-easy-1m-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if r1m.FileShare != 0 {
		t.Errorf("1m misalign share = %.4f, want 0", r1m.FileShare)
	}
	if r1m.FileAlignment != 1<<20 {
		t.Errorf("alignment boundary = %d", r1m.FileAlignment)
	}
}

func TestPatternClassification(t *testing.T) {
	// ior-hard: strided forward jumps, no backward, no consecutive.
	hard, err := Pattern(envFor(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if hard.Consecutive != 0 {
		t.Errorf("ior-hard consecutive = %d", hard.Consecutive)
	}
	if hard.NonContigShare < 0.99 {
		t.Errorf("ior-hard noncontig = %.3f", hard.NonContigShare)
	}
	if hard.BackwardShare > 0.01 {
		t.Errorf("ior-hard backward share = %.3f, strided is forward-only", hard.BackwardShare)
	}

	// ior-rnd4k: substantial backward jumps.
	rnd, err := Pattern(envFor(t, "ior-rnd4k"))
	if err != nil {
		t.Fatal(err)
	}
	if rnd.BackwardShare < 0.2 {
		t.Errorf("rnd4k backward share = %.3f", rnd.BackwardShare)
	}

	// md-workbench: same-offset re-access counts as repeats, not random.
	mdw, err := Pattern(envFor(t, "md-workbench"))
	if err != nil {
		t.Fatal(err)
	}
	if mdw.Repeats == 0 {
		t.Error("md-workbench should show repeat accesses")
	}
	if mdw.NonContigShare > 0.05 {
		t.Errorf("md-workbench noncontig = %.3f; repeats misclassified as random", mdw.NonContigShare)
	}
}

func TestSharedFileConflicts(t *testing.T) {
	easy, err := SharedFile(envFor(t, "ior-easy-2k-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if easy.SharedFiles != 1 || easy.MaxRanks != 4 {
		t.Errorf("shared files = %d, max ranks = %d", easy.SharedFiles, easy.MaxRanks)
	}
	if easy.ConflictStripes != 0 {
		t.Errorf("segmented access must not conflict: %d stripes", easy.ConflictStripes)
	}
	if easy.OverlapEvents != 0 {
		t.Errorf("segmented access must not overlap: %d events", easy.OverlapEvents)
	}

	hard, err := SharedFile(envFor(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if hard.ConflictShare < 0.5 {
		t.Errorf("interleaved writes should conflict broadly: %.3f", hard.ConflictShare)
	}
	if hard.OverlapEvents == 0 {
		t.Error("interleaved writes should overlap in time")
	}

	fpp, err := SharedFile(envFor(t, "ior-easy-1m-fpp"))
	if err != nil {
		t.Fatal(err)
	}
	if fpp.SharedFiles != 0 {
		t.Errorf("file-per-process shows %d shared files", fpp.SharedFiles)
	}
}

func TestImbalancePatterns(t *testing.T) {
	base, err := Imbalance(envFor(t, "e2e-baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Pattern != "single-rank" || base.TopRank != 0 {
		t.Errorf("e2e baseline pattern = %s, top rank %d", base.Pattern, base.TopRank)
	}
	if base.ImbalancePct < 0.98 {
		t.Errorf("imbalance pct = %.4f, want ~0.99", base.ImbalancePct)
	}

	opt, err := Imbalance(envFor(t, "e2e-optimized"))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Pattern != "subset" {
		t.Errorf("e2e optimized pattern = %s", opt.Pattern)
	}
	if opt.SubsetK > 64 || opt.SubsetK == 0 {
		t.Errorf("subset size = %d, want <=64", opt.SubsetK)
	}

	bal, err := Imbalance(envFor(t, "ior-easy-1m-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if bal.Pattern != "balanced" {
		t.Errorf("ior-easy pattern = %s", bal.Pattern)
	}
}

func TestMetadataRatios(t *testing.T) {
	mdw, err := Metadata(envFor(t, "md-workbench"))
	if err != nil {
		t.Fatal(err)
	}
	if mdw.Ratio < 0.5 {
		t.Errorf("md-workbench metadata ratio = %.2f", mdw.Ratio)
	}
	if mdw.DistinctFiles < 200 {
		t.Errorf("distinct files = %d", mdw.DistinctFiles)
	}
	easy, err := Metadata(envFor(t, "ior-easy-1m-shared"))
	if err != nil {
		t.Fatal(err)
	}
	if easy.Ratio > 0.01 {
		t.Errorf("ior-easy metadata ratio = %.4f", easy.Ratio)
	}
}

func TestInterfaceReports(t *testing.T) {
	posixOnly, err := Interface(envFor(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if posixOnly.UsesMPIIO || !posixOnly.UsesPOSIX || !posixOnly.MultiRankData {
		t.Errorf("ior-hard interface = %+v", posixOnly)
	}
	if posixOnly.SharedFiles != 1 {
		t.Errorf("shared files = %d", posixOnly.SharedFiles)
	}
	mpi, err := Interface(envFor(t, "openpmd-baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if !mpi.UsesMPIIO {
		t.Error("openpmd should use MPI-IO")
	}
	if mpi.Describe() == "" {
		t.Error("describe empty")
	}
}

func TestCollectiveReports(t *testing.T) {
	degraded, err := Collective(envFor(t, "openpmd-baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.HasMPIIO || degraded.CollOps != 0 || degraded.IndepOps == 0 {
		t.Errorf("openpmd baseline collective = %+v", degraded)
	}
	if degraded.SmallIndepShare < 0.9 {
		t.Errorf("small indep share = %.3f", degraded.SmallIndepShare)
	}
	healthy, err := Collective(envFor(t, "openpmd-optimized"))
	if err != nil {
		t.Fatal(err)
	}
	if healthy.CollShare < 0.9 {
		t.Errorf("optimized collective share = %.3f", healthy.CollShare)
	}
	none, err := Collective(envFor(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if none.HasMPIIO {
		t.Error("ior-hard reports MPI-IO")
	}
}

func TestTimeImbalance(t *testing.T) {
	base, err := TimeImbalance(envFor(t, "e2e-baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if base.SlowestRank != 0 {
		t.Errorf("slowest rank = %d, want 0", base.SlowestRank)
	}
	if base.Ratio < 10 {
		t.Errorf("ratio = %.1f, want >=10", base.Ratio)
	}
	even, err := TimeImbalance(envFor(t, "ior-easy-1m-fpp"))
	if err != nil {
		t.Fatal(err)
	}
	if even.Ratio > 3 {
		t.Errorf("balanced workload ratio = %.1f", even.Ratio)
	}
}

func TestMissingTables(t *testing.T) {
	empty := NewEnv(&extractor.Output{Tables: map[string]*table.Table{}}, knowledge.DefaultHyperparams())
	if _, err := SmallIO(empty); err == nil {
		t.Error("SmallIO without DXT accepted")
	}
	if _, err := Alignment(empty); err == nil {
		t.Error("Alignment without POSIX accepted")
	}
	if _, err := Metadata(empty); err == nil {
		t.Error("Metadata without POSIX accepted")
	}
	// Collective degrades gracefully (no MPI-IO is a valid state).
	if r, err := Collective(empty); err != nil || r.HasMPIIO {
		t.Errorf("Collective on empty env: %+v, %v", r, err)
	}
}

func TestShareBoundsProperty(t *testing.T) {
	f := func(num, den uint16) bool {
		s := share(int64(num), int64(den))
		if den == 0 {
			return s == 0
		}
		if num > den {
			return s > 1
		}
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportSharesWithinBounds(t *testing.T) {
	// All computed shares across all workloads stay in [0, 1].
	for _, name := range []string{
		"ior-easy-2k-shared", "ior-hard", "ior-rnd4k", "md-workbench",
		"openpmd-baseline", "openpmd-optimized", "e2e-baseline", "e2e-optimized",
	} {
		env := envFor(t, name)
		small, err := SmallIO(env)
		if err != nil {
			t.Fatal(err)
		}
		pat, err := Pattern(env)
		if err != nil {
			t.Fatal(err)
		}
		al, err := Alignment(env)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := SharedFile(env)
		if err != nil {
			t.Fatal(err)
		}
		for label, v := range map[string]float64{
			"small":     small.SmallShare,
			"tiny":      small.TinyShare,
			"consec":    small.ConsecShare,
			"volume":    small.VolumeShare,
			"noncontig": pat.NonContigShare,
			"backward":  pat.BackwardShare,
			"file-mis":  al.FileShare,
			"mem-mis":   al.MemShare,
			"conflict":  sf.ConflictShare,
			"on-shared": sf.WritesOnSharedShare,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: share %s = %f out of [0,1]", name, label, v)
			}
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.5) != "50.00%" {
		t.Errorf("Pct(0.5) = %s", Pct(0.5))
	}
	if Pct(0.998) != "99.80%" {
		t.Errorf("Pct(0.998) = %s", Pct(0.998))
	}
}
