// Package analysis is the computation engine behind the simulated
// expert model: the set of trace analyses the paper's LLM performed by
// generating and executing code through the Assistants API. Each
// exported function computes one issue-specific report from the
// extracted CSV tables, and the expertsim client stitches the results
// into chain-of-thought steps, a code listing, and a conclusion.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/knowledge"
)

// Env bundles everything an analysis needs: the extracted tables and
// the system hyperparameters.
type Env struct {
	Out   *extractor.Output
	Hyper knowledge.Hyperparams

	events []Event // lazily parsed DXT cache
}

// NewEnv builds an analysis environment.
func NewEnv(out *extractor.Output, hyper knowledge.Hyperparams) *Env {
	return &Env{Out: out, Hyper: hyper}
}

// Event is one parsed DXT row.
type Event struct {
	FileID   string
	FileName string
	Module   string
	Rank     int64
	Op       string // "read" or "write"
	Offset   int64
	Length   int64
	Start    float64
	End      float64
}

// Events parses and caches the DXT table. It returns an error when the
// trace has no DXT data — callers fall back to counter-only analyses.
func (e *Env) Events() ([]Event, error) {
	if e.events != nil {
		return e.events, nil
	}
	t := e.Out.Table(extractor.TableDXT)
	if t == nil {
		return nil, fmt.Errorf("analysis: trace has no DXT table")
	}
	evs := make([]Event, 0, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		var ev Event
		var err error
		if ev.FileID, err = t.Value(i, "file_id"); err != nil {
			return nil, err
		}
		if ev.FileName, err = t.Value(i, "file_name"); err != nil {
			return nil, err
		}
		if ev.Module, err = t.Value(i, "module"); err != nil {
			return nil, err
		}
		if ev.Rank, err = t.Int(i, "rank"); err != nil {
			return nil, err
		}
		if ev.Op, err = t.Value(i, "op"); err != nil {
			return nil, err
		}
		if ev.Offset, err = t.Int(i, "offset"); err != nil {
			return nil, err
		}
		if ev.Length, err = t.Int(i, "length"); err != nil {
			return nil, err
		}
		if ev.Start, err = t.Float(i, "start"); err != nil {
			return nil, err
		}
		if ev.End, err = t.Float(i, "end"); err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	e.events = evs
	return evs, nil
}

// SumPosix sums one POSIX counter column across records; missing table
// or column yields zero (Darshan counter semantics).
func (e *Env) SumPosix(counter string) int64 {
	t := e.Out.Table(extractor.TablePOSIX)
	if t == nil || !t.HasCol(counter) {
		return 0
	}
	v, err := t.SumInt(counter)
	if err != nil {
		return 0
	}
	return v
}

// SumPosixFloat sums one POSIX float counter column.
func (e *Env) SumPosixFloat(counter string) float64 {
	t := e.Out.Table(extractor.TablePOSIX)
	if t == nil || !t.HasCol(counter) {
		return 0
	}
	v, err := t.SumFloat(counter)
	if err != nil {
		return 0
	}
	return v
}

// SumMpiio sums one MPI-IO counter column.
func (e *Env) SumMpiio(counter string) int64 {
	t := e.Out.Table(extractor.TableMPIIO)
	if t == nil || !t.HasCol(counter) {
		return 0
	}
	v, err := t.SumInt(counter)
	if err != nil {
		return 0
	}
	return v
}

// NProcs returns the job's rank count from the JOB table.
func (e *Env) NProcs() int {
	t := e.Out.Table(extractor.TableJob)
	if t == nil || t.NumRows() == 0 {
		return e.Out.Header.NProcs
	}
	v, err := t.Int(0, "nprocs")
	if err != nil {
		return e.Out.Header.NProcs
	}
	return int(v)
}

// TotalDataOps returns POSIX reads+writes (the denominator most shares
// use).
func (e *Env) TotalDataOps() int64 {
	return e.SumPosix(darshan.CPosixReads) + e.SumPosix(darshan.CPosixWrites)
}

// share divides safely.
func share(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// fshare divides floats safely.
func fshare(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct formats a share as a percentage with two decimals.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// streamID keys per-(file, rank, kind) access streams.
type streamID struct {
	file string
	rank int64
	op   string
}

// --- Small I/O ---

// SmallIOReport quantifies small-request behavior and aggregation
// potential.
type SmallIOReport struct {
	TotalOps     int64
	SmallOps     int64 // ops below the RPC size
	SmallShare   float64
	TinyOps      int64 // ops below the stripe size
	TinyShare    float64
	SmallBytes   int64
	TotalBytes   int64
	VolumeShare  float64 // bytes moved by small ops / total bytes
	ConsecSmall  int64   // small ops consecutive with the previous access
	ConsecShare  float64 // of small ops
	AggPotential int64   // small ops that are consecutive → aggregatable
	PerRankSmall float64 // mean small ops per rank
	RPCSize      int64
	StripeSize   int64
}

// SmallIO computes the small-I/O report from the DXT event stream.
func SmallIO(env *Env) (SmallIOReport, error) {
	evs, err := env.Events()
	if err != nil {
		return SmallIOReport{}, err
	}
	r := SmallIOReport{RPCSize: env.Hyper.RPCSize, StripeSize: env.Hyper.StripeSize}
	prevEnd := map[streamID]int64{}
	seen := map[streamID]bool{}
	ranks := map[int64]bool{}
	for _, ev := range evs {
		r.TotalOps++
		r.TotalBytes += ev.Length
		ranks[ev.Rank] = true
		small := ev.Length < env.Hyper.RPCSize
		if small {
			r.SmallOps++
			r.SmallBytes += ev.Length
		}
		if ev.Length < env.Hyper.StripeSize {
			r.TinyOps++
		}
		id := streamID{ev.FileName, ev.Rank, ev.Op}
		if seen[id] && small && ev.Offset == prevEnd[id] {
			r.ConsecSmall++
		}
		seen[id] = true
		prevEnd[id] = ev.Offset + ev.Length
	}
	r.SmallShare = share(r.SmallOps, r.TotalOps)
	r.TinyShare = share(r.TinyOps, r.TotalOps)
	r.VolumeShare = share(r.SmallBytes, r.TotalBytes)
	r.ConsecShare = share(r.ConsecSmall, r.SmallOps)
	r.AggPotential = r.ConsecSmall
	if len(ranks) > 0 {
		r.PerRankSmall = float64(r.SmallOps) / float64(len(ranks))
	}
	return r, nil
}

// --- Alignment ---

// AlignmentReport quantifies file- and memory-alignment violations.
type AlignmentReport struct {
	TotalOps      int64
	FileMis       int64
	FileShare     float64
	MemMis        int64
	MemShare      float64
	FileAlignment int64
	WorstFile     string
	WorstFileMis  int64
}

// Alignment computes misalignment shares from POSIX counters, with the
// per-file worst offender.
func Alignment(env *Env) (AlignmentReport, error) {
	t := env.Out.Table(extractor.TablePOSIX)
	if t == nil {
		return AlignmentReport{}, fmt.Errorf("analysis: trace has no POSIX table")
	}
	var r AlignmentReport
	for i := 0; i < t.NumRows(); i++ {
		reads, err := t.Int(i, darshan.CPosixReads)
		if err != nil {
			return r, err
		}
		writes, err := t.Int(i, darshan.CPosixWrites)
		if err != nil {
			return r, err
		}
		mis, err := t.Int(i, darshan.CPosixFileNotAligned)
		if err != nil {
			return r, err
		}
		mem, err := t.Int(i, darshan.CPosixMemNotAligned)
		if err != nil {
			return r, err
		}
		align, err := t.Int(i, darshan.CPosixFileAlignment)
		if err != nil {
			return r, err
		}
		r.TotalOps += reads + writes
		r.FileMis += mis
		r.MemMis += mem
		if align > r.FileAlignment {
			r.FileAlignment = align
		}
		if mis > r.WorstFileMis {
			r.WorstFileMis = mis
			r.WorstFile, _ = t.Value(i, "file_name")
		}
	}
	r.FileShare = share(r.FileMis, r.TotalOps)
	r.MemShare = share(r.MemMis, r.TotalOps)
	return r, nil
}

// --- Access pattern ---

// PatternReport classifies every non-initial access of each per-rank
// stream as consecutive, repeat (same offset and length as the previous
// access — temporal re-access, not randomness), forward jump (strided),
// or backward jump.
type PatternReport struct {
	Classified     int64
	Consecutive    int64
	Repeats        int64
	ForwardJumps   int64
	BackwardJumps  int64
	ConsecShare    float64
	NonContig      int64
	NonContigShare float64
	BackwardShare  float64
	// Random ops = non-contiguous accesses; RandomBytes their volume.
	RandomOps         int64
	RandomBytes       int64
	TotalBytes        int64
	RandomVolumeShare float64
	// PerRankRandomMean is mean random ops per active rank.
	PerRankRandomMean float64
	// RandomReads/RandomReadShare mirror Drishti's read-random metric.
	Reads           int64
	RandomReads     int64
	RandomReadShare float64
}

// Pattern computes the access-pattern report from DXT.
func Pattern(env *Env) (PatternReport, error) {
	evs, err := env.Events()
	if err != nil {
		return PatternReport{}, err
	}
	var r PatternReport
	prevEnd := map[streamID]int64{}
	prevStart := map[streamID]int64{}
	prevLen := map[streamID]int64{}
	seen := map[streamID]bool{}
	randPerRank := map[int64]int64{}
	for _, ev := range evs {
		r.TotalBytes += ev.Length
		if ev.Op == "read" {
			r.Reads++
		}
		id := streamID{ev.FileName, ev.Rank, ev.Op}
		if seen[id] {
			r.Classified++
			switch {
			case ev.Offset == prevEnd[id]:
				r.Consecutive++
			case ev.Offset == prevStart[id] && ev.Length == prevLen[id]:
				r.Repeats++
			case ev.Offset > prevEnd[id]:
				r.ForwardJumps++
				r.RandomOps++
				r.RandomBytes += ev.Length
				randPerRank[ev.Rank]++
				if ev.Op == "read" {
					r.RandomReads++
				}
			default:
				r.BackwardJumps++
				r.RandomOps++
				r.RandomBytes += ev.Length
				randPerRank[ev.Rank]++
				if ev.Op == "read" {
					r.RandomReads++
				}
			}
		}
		seen[id] = true
		prevEnd[id] = ev.Offset + ev.Length
		prevStart[id] = ev.Offset
		prevLen[id] = ev.Length
	}
	r.NonContig = r.ForwardJumps + r.BackwardJumps
	r.ConsecShare = share(r.Consecutive, r.Classified)
	r.NonContigShare = share(r.NonContig, r.Classified)
	r.BackwardShare = share(r.BackwardJumps, r.Classified)
	r.RandomVolumeShare = share(r.RandomBytes, r.TotalBytes)
	r.RandomReadShare = share(r.RandomReads, r.Reads)
	if len(randPerRank) > 0 {
		var sum int64
		for _, v := range randPerRank {
			sum += v
		}
		r.PerRankRandomMean = float64(sum) / float64(len(randPerRank))
	}
	return r, nil
}

// --- Shared file ---

// SharedFileReport reconstructs multi-rank file access and stripe
// conflicts from DXT.
type SharedFileReport struct {
	SharedFiles         int
	MaxRanks            int
	BusiestFile         string
	StripesTouched      int64
	ConflictStripes     int64 // stripes written by more than one rank
	ConflictShare       float64
	OverlapEvents       int64 // conflicting-stripe accesses overlapping in time
	WriteOps            int64
	WritesOnShared      int64 // writes landing on conflict stripes
	WritesOnSharedShare float64
	StripeSize          int64
}

// SharedFile computes the shared-file report.
func SharedFile(env *Env) (SharedFileReport, error) {
	evs, err := env.Events()
	if err != nil {
		return SharedFileReport{}, err
	}
	r := SharedFileReport{StripeSize: env.Hyper.StripeSize}
	type stripeKey struct {
		file   string
		stripe int64
	}
	ranksPerFile := map[string]map[int64]bool{}
	writersPerStripe := map[stripeKey]map[int64]bool{}
	stripes := map[stripeKey]bool{}
	// For temporal overlap: track the latest access per stripe; only
	// conflicts involving at least one write count (concurrent reads of
	// one stripe are benign).
	type interval struct {
		rank  int64
		end   float64
		write bool
	}
	lastOnStripe := map[stripeKey]interval{}

	for _, ev := range evs {
		if ranksPerFile[ev.FileName] == nil {
			ranksPerFile[ev.FileName] = map[int64]bool{}
		}
		ranksPerFile[ev.FileName][ev.Rank] = true
		first := ev.Offset / r.StripeSize
		last := (ev.Offset + max64(ev.Length, 1) - 1) / r.StripeSize
		for s := first; s <= last; s++ {
			k := stripeKey{ev.FileName, s}
			stripes[k] = true
			if ev.Op == "write" {
				if writersPerStripe[k] == nil {
					writersPerStripe[k] = map[int64]bool{}
				}
				writersPerStripe[k][ev.Rank] = true
			}
			if prev, ok := lastOnStripe[k]; ok && prev.rank != ev.Rank && ev.Start < prev.end &&
				(prev.write || ev.Op == "write") {
				r.OverlapEvents++
			}
			if cur, ok := lastOnStripe[k]; !ok || ev.End > cur.end {
				lastOnStripe[k] = interval{rank: ev.Rank, end: ev.End, write: ev.Op == "write"}
			}
		}
		if ev.Op == "write" {
			r.WriteOps++
		}
	}
	for file, ranks := range ranksPerFile {
		if len(ranks) > 1 {
			r.SharedFiles++
		}
		if len(ranks) > r.MaxRanks {
			r.MaxRanks = len(ranks)
			r.BusiestFile = file
		}
	}
	conflict := map[stripeKey]bool{}
	for k, writers := range writersPerStripe {
		if len(writers) > 1 {
			conflict[k] = true
			r.ConflictStripes++
		}
	}
	r.StripesTouched = int64(len(stripes))
	r.ConflictShare = share(r.ConflictStripes, r.StripesTouched)
	// Second pass for writes landing on conflict stripes.
	for _, ev := range evs {
		if ev.Op != "write" {
			continue
		}
		first := ev.Offset / r.StripeSize
		last := (ev.Offset + max64(ev.Length, 1) - 1) / r.StripeSize
		for s := first; s <= last; s++ {
			if conflict[stripeKey{ev.FileName, s}] {
				r.WritesOnShared++
				break
			}
		}
	}
	r.WritesOnSharedShare = share(r.WritesOnShared, r.WriteOps)
	return r, nil
}

// --- Load imbalance ---

// RankLoad is one rank's totals.
type RankLoad struct {
	Rank  int64
	Bytes int64
	Ops   int64
	Time  float64
}

// ImbalanceReport quantifies per-rank workload skew.
type ImbalanceReport struct {
	Ranks        int
	ActiveRanks  int
	Loads        []RankLoad // sorted by bytes descending
	TopRank      int64
	TopByteShare float64
	TopOpsShare  float64
	// SubsetK is the smallest number of ranks covering 95% of bytes.
	SubsetK int
	// SubsetShare is the byte share of those SubsetK ranks.
	SubsetShare float64
	// ImbalancePct is Drishti's (max-avg)/max metric over bytes.
	ImbalancePct float64
	TotalBytes   int64
	// Pattern classifies the shape: "balanced", "single-rank", "subset".
	Pattern string
}

// Imbalance computes per-rank load distribution from DXT.
func Imbalance(env *Env) (ImbalanceReport, error) {
	evs, err := env.Events()
	if err != nil {
		return ImbalanceReport{}, err
	}
	per := map[int64]*RankLoad{}
	for _, ev := range evs {
		l, ok := per[ev.Rank]
		if !ok {
			l = &RankLoad{Rank: ev.Rank}
			per[ev.Rank] = l
		}
		l.Bytes += ev.Length
		l.Ops++
		l.Time += ev.End - ev.Start
	}
	r := ImbalanceReport{Ranks: env.NProcs(), ActiveRanks: len(per)}
	for _, l := range per {
		r.Loads = append(r.Loads, *l)
		r.TotalBytes += l.Bytes
	}
	sort.Slice(r.Loads, func(i, j int) bool {
		if r.Loads[i].Bytes != r.Loads[j].Bytes {
			return r.Loads[i].Bytes > r.Loads[j].Bytes
		}
		return r.Loads[i].Rank < r.Loads[j].Rank
	})
	if len(r.Loads) == 0 {
		r.Pattern = "balanced"
		return r, nil
	}
	var totalOps int64
	for _, l := range r.Loads {
		totalOps += l.Ops
	}
	r.TopRank = r.Loads[0].Rank
	r.TopByteShare = share(r.Loads[0].Bytes, r.TotalBytes)
	r.TopOpsShare = share(r.Loads[0].Ops, totalOps)
	var cum int64
	for i, l := range r.Loads {
		cum += l.Bytes
		if float64(cum) >= 0.95*float64(r.TotalBytes) {
			r.SubsetK = i + 1
			r.SubsetShare = share(cum, r.TotalBytes)
			break
		}
	}
	maxB := float64(r.Loads[0].Bytes)
	avgB := float64(r.TotalBytes) / float64(maxInt(r.Ranks, len(r.Loads)))
	r.ImbalancePct = fshare(maxB-avgB, maxB)
	topOutlier := len(r.Loads) > 1 && r.Loads[0].Bytes > 10*r.Loads[1].Bytes
	switch {
	case r.Ranks <= 1:
		// A serial job cannot be imbalanced.
		r.Pattern = "balanced"
	case r.TopByteShare > 0.5 && r.Ranks > 1, topOutlier && r.ImbalancePct > 0.5:
		r.Pattern = "single-rank"
	case r.SubsetK > 0 && r.SubsetK*4 < r.ActiveRanks:
		r.Pattern = "subset"
	case r.ImbalancePct > 0.3 && r.ActiveRanks*2 < r.Ranks:
		r.Pattern = "subset"
	default:
		r.Pattern = "balanced"
	}
	return r, nil
}

// --- Metadata ---

// MetadataReport compares metadata load against data load.
type MetadataReport struct {
	Opens, Stats, Seeks, Fsyncs int64
	MetaOps                     int64
	DataOps                     int64
	Ratio                       float64 // metadata ops per data op
	MetaTime                    float64
	IOTime                      float64
	TimeShare                   float64 // metadata time / total I/O time
	DistinctFiles               int
}

// Metadata computes the metadata report from POSIX counters.
func Metadata(env *Env) (MetadataReport, error) {
	t := env.Out.Table(extractor.TablePOSIX)
	if t == nil {
		return MetadataReport{}, fmt.Errorf("analysis: trace has no POSIX table")
	}
	var r MetadataReport
	r.Opens = env.SumPosix(darshan.CPosixOpens)
	r.Stats = env.SumPosix(darshan.CPosixStats)
	r.Seeks = env.SumPosix(darshan.CPosixSeeks)
	r.Fsyncs = env.SumPosix(darshan.CPosixFsyncs)
	r.MetaOps = r.Opens + r.Stats + r.Seeks + r.Fsyncs
	r.DataOps = env.TotalDataOps()
	r.Ratio = fshare(float64(r.MetaOps), float64(r.DataOps))
	r.MetaTime = env.SumPosixFloat(darshan.FPosixMetaTime)
	r.IOTime = r.MetaTime +
		env.SumPosixFloat(darshan.FPosixReadTime) +
		env.SumPosixFloat(darshan.FPosixWriteTime)
	r.TimeShare = fshare(r.MetaTime, r.IOTime)
	files := map[string]bool{}
	for i := 0; i < t.NumRows(); i++ {
		name, err := t.Value(i, "file_name")
		if err != nil {
			return r, err
		}
		files[name] = true
	}
	r.DistinctFiles = len(files)
	return r, nil
}

// --- Interface usage ---

// InterfaceReport describes which I/O interfaces the job used.
type InterfaceReport struct {
	NProcs        int
	UsesPOSIX     bool
	UsesMPIIO     bool
	UsesSTDIO     bool
	PosixDataOps  int64
	MpiioDataOps  int64
	StdioDataOps  int64
	MultiRankData bool // >1 rank performed data I/O
	SharedFiles   int  // files accessed by >1 rank (0 if no DXT)
}

// Interface computes the interface-usage report.
func Interface(env *Env) (InterfaceReport, error) {
	var r InterfaceReport
	r.NProcs = env.NProcs()
	posix := env.Out.Table(extractor.TablePOSIX)
	r.UsesPOSIX = posix != nil && posix.NumRows() > 0
	r.PosixDataOps = env.TotalDataOps()
	mp := env.Out.Table(extractor.TableMPIIO)
	r.MpiioDataOps = env.SumMpiio(darshan.CMpiioIndepReads) + env.SumMpiio(darshan.CMpiioIndepWrites) +
		env.SumMpiio(darshan.CMpiioCollReads) + env.SumMpiio(darshan.CMpiioCollWrites)
	r.UsesMPIIO = mp != nil && mp.NumRows() > 0 && r.MpiioDataOps > 0
	st := env.Out.Table(extractor.TableSTDIO)
	if st != nil && st.NumRows() > 0 {
		reads, _ := st.SumInt(darshan.CStdioReads)
		writes, _ := st.SumInt(darshan.CStdioWrites)
		r.StdioDataOps = reads + writes
		r.UsesSTDIO = r.StdioDataOps > 0
	}
	if evs, err := env.Events(); err == nil {
		ranks := map[int64]bool{}
		perFile := map[string]map[int64]bool{}
		for _, ev := range evs {
			ranks[ev.Rank] = true
			if perFile[ev.FileName] == nil {
				perFile[ev.FileName] = map[int64]bool{}
			}
			perFile[ev.FileName][ev.Rank] = true
		}
		r.MultiRankData = len(ranks) > 1
		for _, rs := range perFile {
			if len(rs) > 1 {
				r.SharedFiles++
			}
		}
	} else {
		r.MultiRankData = r.NProcs > 1 && r.PosixDataOps > 0
	}
	return r, nil
}

// --- Collective I/O ---

// CollectiveReport describes the collective/independent MPI-IO split.
type CollectiveReport struct {
	HasMPIIO        bool
	CollOps         int64
	IndepOps        int64
	CollOpens       int64
	IndepOpens      int64
	CollShare       float64
	SmallIndep      int64 // independent data ops below the stripe size
	SmallIndepShare float64
}

// Collective computes the collective-I/O report.
func Collective(env *Env) (CollectiveReport, error) {
	var r CollectiveReport
	t := env.Out.Table(extractor.TableMPIIO)
	if t == nil || t.NumRows() == 0 {
		return r, nil
	}
	r.HasMPIIO = true
	r.CollOps = env.SumMpiio(darshan.CMpiioCollReads) + env.SumMpiio(darshan.CMpiioCollWrites)
	r.IndepOps = env.SumMpiio(darshan.CMpiioIndepReads) + env.SumMpiio(darshan.CMpiioIndepWrites)
	r.CollOpens = env.SumMpiio(darshan.CMpiioCollOpens)
	r.IndepOpens = env.SumMpiio(darshan.CMpiioIndepOpens)
	r.CollShare = share(r.CollOps, r.CollOps+r.IndepOps)
	for _, b := range darshan.SizeBins {
		if b.Hi > 0 && b.Hi <= env.Hyper.StripeSize {
			r.SmallIndep += env.SumMpiio("MPIIO_SIZE_READ_AGG_" + b.Suffix)
			r.SmallIndep += env.SumMpiio("MPIIO_SIZE_WRITE_AGG_" + b.Suffix)
		}
	}
	// The size histogram covers all MPI-IO ops; attribute small ones to
	// the independent side proportionally when collectives exist.
	if r.CollOps == 0 {
		r.SmallIndepShare = share(r.SmallIndep, r.IndepOps)
	} else {
		r.SmallIndepShare = share(r.SmallIndep, r.CollOps+r.IndepOps)
	}
	return r, nil
}

// --- Time imbalance ---

// TimeReport quantifies per-rank I/O time divergence.
type TimeReport struct {
	ActiveRanks  int
	SlowestRank  int64
	SlowestTime  float64
	MeanTime     float64
	Ratio        float64 // slowest / mean
	VarianceTime float64 // Darshan's reduced variance counter
}

// TimeImbalance computes the time-imbalance report.
func TimeImbalance(env *Env) (TimeReport, error) {
	evs, err := env.Events()
	if err != nil {
		return TimeReport{}, err
	}
	per := map[int64]float64{}
	for _, ev := range evs {
		per[ev.Rank] += ev.End - ev.Start
	}
	var r TimeReport
	r.ActiveRanks = len(per)
	if r.ActiveRanks == 0 {
		return r, nil
	}
	var sum float64
	for rank, t := range per {
		sum += t
		if t > r.SlowestTime {
			r.SlowestTime = t
			r.SlowestRank = rank
		}
	}
	r.MeanTime = sum / float64(r.ActiveRanks)
	r.Ratio = fshare(r.SlowestTime, r.MeanTime)
	r.VarianceTime = env.SumPosixFloat(darshan.FPosixVarianceTime)
	return r, nil
}

// FileCount returns the number of distinct files in the POSIX table.
func FileCount(env *Env) int {
	t := env.Out.Table(extractor.TablePOSIX)
	if t == nil {
		return 0
	}
	files := map[string]bool{}
	for i := 0; i < t.NumRows(); i++ {
		if name, err := t.Value(i, "file_name"); err == nil {
			files[name] = true
		}
	}
	return len(files)
}

// Describe renders a short human-readable list of the interfaces used.
func (r InterfaceReport) Describe() string {
	var used []string
	if r.UsesPOSIX {
		used = append(used, "POSIX")
	}
	if r.UsesMPIIO {
		used = append(used, "MPI-IO")
	}
	if r.UsesSTDIO {
		used = append(used, "STDIO")
	}
	if len(used) == 0 {
		return "no I/O interfaces"
	}
	return strings.Join(used, ", ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
