package rag

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/testutil"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The POSIX_FILE_NOT_ALIGNED counter is 99.8% of I/O!")
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "posix_file_not_aligned") {
		t.Errorf("counter name split: %v", toks)
	}
	if strings.Contains(joined, "the ") || strings.Contains(joined, " is") {
		t.Errorf("stopwords kept: %v", toks)
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty text tokenized")
	}
	if len(Tokenize("a I")) != 0 {
		t.Error("single chars / stopwords kept")
	}
}

func TestIndexAddValidation(t *testing.T) {
	ix := NewIndex()
	if err := ix.Add(Document{ID: "x", Text: "   "}); err == nil {
		t.Error("blank document accepted")
	}
	if err := ix.Add(Document{ID: "y", Text: "a a a"}); err == nil {
		t.Error("stopword-only document accepted")
	}
	if err := ix.Add(Document{ID: "z", Text: "lustre striping"}); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
	if ix.Len() != 1 {
		t.Errorf("len = %d", ix.Len())
	}
}

func TestQueryRanking(t *testing.T) {
	ix := NewIndex()
	docs := []Document{
		{ID: "align", Text: "misaligned file offsets straddle lustre stripe boundaries causing read-modify-write"},
		{ID: "small", Text: "small requests below the RPC size underutilize the bulk transfer mechanism"},
		{ID: "meta", Text: "metadata server load from opens stats and closes of many files"},
	}
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.Query("why are my offsets misaligned with the stripe boundary?", 3)
	if len(hits) == 0 || hits[0].Doc.ID != "align" {
		t.Errorf("ranking wrong: %+v", hits)
	}
	hits = ix.Query("metadata server opens", 1)
	if len(hits) != 1 || hits[0].Doc.ID != "meta" {
		t.Errorf("k-limit or ranking wrong: %+v", hits)
	}
	if hits := ix.Query("zzz qqq www", 3); len(hits) != 0 {
		t.Errorf("no-overlap query returned hits: %+v", hits)
	}
	if hits := ix.Query("", 3); len(hits) != 0 {
		t.Error("empty query returned hits")
	}
}

func TestQueryScoresDescending(t *testing.T) {
	ix := NewIndex()
	for _, d := range []Document{
		{ID: "1", Text: "stripe stripe stripe lustre"},
		{ID: "2", Text: "stripe lustre metadata"},
		{ID: "3", Text: "metadata opens"},
	} {
		if err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.Query("stripe lustre", 0)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("scores not descending: %+v", hits)
		}
	}
}

func TestSelfRetrievalProperty(t *testing.T) {
	// A document queried by its own full text is always the top hit.
	corpus := []string{
		"lustre stripe conflicts between writer ranks",
		"client cache aggregation of consecutive small writes",
		"metadata storms from per-iteration open close cycles",
		"collective buffering funnels data through aggregator nodes",
		"random reads defeat readahead prefetching entirely",
	}
	ix := NewIndex()
	for i, text := range corpus {
		if err := ix.Add(Document{ID: string(rune('a' + i)), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	f := func(pick uint8) bool {
		i := int(pick) % len(corpus)
		hits := ix.Query(corpus[i], 1)
		return len(hits) == 1 && hits[0].Doc.ID == string(rune('a'+i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func diagnose(t *testing.T, name string) (*ion.Report, *knowledge.Base) {
	t.Helper()
	out, _, err := testutil.Extracted(name)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, name)
	if err != nil {
		t.Fatal(err)
	}
	return rep, knowledge.NewBase(knowledge.FromExtract(out))
}

func TestIndexReport(t *testing.T) {
	rep, kb := diagnose(t, "ior-hard")
	ix, err := IndexReport(rep, kb)
	if err != nil {
		t.Fatal(err)
	}
	// 9 diagnoses + steps + 9 knowledge chunks.
	if ix.Len() < 20 {
		t.Errorf("index too small: %d docs", ix.Len())
	}
	hits := ix.Query("lock conflicts on the shared file stripes", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if !strings.Contains(hits[0].Doc.ID, "shared-file") {
		t.Errorf("top hit %s, want a shared-file chunk", hits[0].Doc.ID)
	}
	if _, err := IndexReport(nil, kb); err == nil {
		t.Error("nil report accepted")
	}
}

func TestContextProviderShrinksContext(t *testing.T) {
	rep, kb := diagnose(t, "e2e-baseline")
	provider, err := ContextProvider(rep, kb, 3)
	if err != nil {
		t.Fatal(err)
	}
	full := rep.ContextText()
	got := provider("which rank is overloaded with write bytes?")
	if !strings.Contains(got, "load-imbalance") {
		t.Errorf("retrieved context misses the imbalance diagnosis:\n%s", got)
	}
	if len(got) >= len(full) {
		t.Errorf("retrieval did not shrink context: %d >= %d", len(got), len(full))
	}
	// Unmatched questions fall back to the full report.
	if fb := provider("zzzz qqqq"); fb != full {
		t.Error("no-hit query should fall back to the full context")
	}
}

func TestRAGSessionEndToEnd(t *testing.T) {
	rep, kb := diagnose(t, "e2e-baseline")
	client := expertsim.New()
	session, err := ion.NewSession(client, rep)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := ContextProvider(rep, kb, 4)
	if err != nil {
		t.Fatal(err)
	}
	session.SetContextProvider(provider)
	answer, err := session.Ask(context.Background(), "Which rank is responsible for the load imbalance?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(answer, "Imbalanced I/O Workload") && !strings.Contains(answer, "rank 0") {
		t.Errorf("RAG-backed answer off-topic: %s", answer)
	}
}

// Regression: unindexable documents must fail with the ErrNoTerms
// sentinel so bulk indexers can skip them, and queries that tokenize to
// nothing (or share no terms) must return no hits rather than NaN
// cosine scores from a zero norm.
func TestErrNoTermsSentinel(t *testing.T) {
	ix := NewIndex()
	for _, text := range []string{"", "   ", "a a a", "the of and", "i"} {
		err := ix.Add(Document{ID: "d", Text: text})
		if !errors.Is(err, ErrNoTerms) {
			t.Errorf("Add(%q) = %v, want ErrNoTerms", text, err)
		}
	}
	if ix.Len() != 0 {
		t.Fatalf("unindexable documents were indexed: len = %d", ix.Len())
	}
}

func TestZeroNormQueriesDoNotNaN(t *testing.T) {
	ix := NewIndex()
	if err := ix.Add(Document{ID: "doc", Text: "lustre stripe alignment"}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"", "the a an of", "i", "zzz qqq"} {
		hits := ix.Query(q, 5)
		for _, h := range hits {
			if math.IsNaN(h.Score) || math.IsInf(h.Score, 0) {
				t.Fatalf("Query(%q) produced non-finite score %v", q, h.Score)
			}
		}
		if q != "zzz qqq" && len(hits) != 0 {
			t.Errorf("Query(%q) returned hits: %+v", q, hits)
		}
	}
	// Empty index: any query must be a clean no-hit.
	if hits := NewIndex().Query("lustre", 3); len(hits) != 0 {
		t.Errorf("empty index returned hits: %+v", hits)
	}
}

func TestIndexReportSkipsUnindexableChunks(t *testing.T) {
	rep := &ion.Report{
		Trace: "t",
		Order: []issue.ID{issue.SmallIO, issue.Metadata},
		Diagnoses: map[issue.ID]*ion.IssueDiagnosis{
			// All-stopword conclusion and step: must be skipped, not fatal.
			issue.SmallIO: {Issue: issue.SmallIO, Title: "", Verdict: issue.VerdictNotDetected,
				Conclusion: "", Steps: []string{" "}},
			issue.Metadata: {Issue: issue.Metadata, Title: "Excessive Metadata Load",
				Verdict:    issue.VerdictDetected,
				Conclusion: "metadata server overloaded by opens and stats",
				Steps:      []string{"counted POSIX_OPENS and POSIX_STATS"}},
		},
	}
	ix, err := IndexReport(rep, nil)
	if err != nil {
		t.Fatalf("IndexReport: %v", err)
	}
	// The small-io chunks still index: their header carries the issue id
	// and verdict. Only truly term-free chunks would drop.
	hits := ix.Query("metadata opens", 2)
	if len(hits) == 0 || !strings.Contains(hits[0].Doc.ID, "metadata") {
		t.Fatalf("retrieval over partially indexable report failed: %+v", hits)
	}
	for _, h := range hits {
		if math.IsNaN(h.Score) {
			t.Fatalf("NaN score: %+v", h)
		}
	}
}
