package rag

import (
	"errors"
	"fmt"
	"strings"

	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
)

// IndexReport builds an index over a diagnosis report (one chunk per
// issue conclusion and one per reasoning step) and the knowledge base
// (one chunk per issue context), the corpus the interactive interface
// retrieves from. Chunks with no indexable terms (e.g. a one-word
// conclusion of stopwords) are skipped, not fatal: the rest of the
// report still indexes.
func IndexReport(rep *ion.Report, kb *knowledge.Base) (*Index, error) {
	if rep == nil {
		return nil, fmt.Errorf("rag: nil report")
	}
	ix := NewIndex()
	add := func(doc Document) error {
		err := ix.Add(doc)
		if errors.Is(err, ErrNoTerms) {
			return nil
		}
		return err
	}
	for _, id := range rep.Order {
		d := rep.Diagnoses[id]
		if d == nil {
			continue
		}
		header := fmt.Sprintf("[%s] %s\nVERDICT: %s\n", id, d.Title, d.Verdict)
		if err := add(Document{
			ID:   "diagnosis/" + string(id),
			Kind: "diagnosis",
			Text: header + d.Conclusion,
		}); err != nil {
			return nil, err
		}
		for i, s := range d.Steps {
			if err := add(Document{
				ID:   fmt.Sprintf("step/%s/%d", id, i+1),
				Kind: "step",
				Text: header + s,
			}); err != nil {
				return nil, err
			}
		}
	}
	if kb != nil {
		for _, id := range kb.Issues() {
			c, err := kb.Context(id)
			if err != nil {
				return nil, err
			}
			if err := add(Document{
				ID:   "knowledge/" + string(id),
				Kind: "knowledge",
				Text: fmt.Sprintf("[%s] %s\n%s\nMitigations: %s", id, c.Title, c.Knowledge, c.Mitigations),
			}); err != nil {
				return nil, err
			}
		}
	}
	return ix, nil
}

// ContextProvider returns a function suitable for
// ion.Session.SetContextProvider: for each question it retrieves the
// top-k chunks and renders a compact context block instead of the full
// report.
func ContextProvider(rep *ion.Report, kb *knowledge.Base, k int) (func(string) string, error) {
	ix, err := IndexReport(rep, kb)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 4
	}
	full := rep.ContextText()
	return func(question string) string {
		hits := ix.Query(question, k)
		if len(hits) == 0 {
			return full // nothing matched: fall back to everything
		}
		var b strings.Builder
		b.WriteString("Retrieved context (most relevant first):\n\n")
		seen := map[issue.ID]bool{}
		for _, h := range hits {
			fmt.Fprintf(&b, "--- %s (score %.3f)\n%s\n\n", h.Doc.ID, h.Score, strings.TrimSpace(h.Doc.Text))
			// Make sure the full diagnosis of a matched step's issue is
			// present at least once.
			if h.Doc.Kind == "step" {
				id := stepIssue(h.Doc.ID)
				if id != "" && !seen[id] {
					if d := rep.Diagnoses[id]; d != nil {
						fmt.Fprintf(&b, "--- diagnosis/%s\n[%s] %s\nVERDICT: %s\n%s\n\n",
							id, id, d.Title, d.Verdict, d.Conclusion)
					}
					seen[id] = true
				}
			}
		}
		return b.String()
	}, nil
}

func stepIssue(docID string) issue.ID {
	parts := strings.Split(docID, "/")
	if len(parts) != 3 || parts[0] != "step" {
		return ""
	}
	id := issue.ID(parts[1])
	if !issue.Valid(id) {
		return ""
	}
	return id
}
