// Package rag implements the retrieval-augmented alternative to pure
// in-context learning that the paper lists as planned work (§5): a
// TF-IDF index over knowledge-base chunks and diagnosis-report sections
// that, for each interactive question, selects only the most relevant
// context to embed in the chat prompt — keeping long conversations
// cheap instead of re-sending the whole report every turn.
package rag

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrNoTerms reports a document that tokenizes to nothing indexable —
// empty text, or text made entirely of stopwords and single
// characters. Callers building an index over machine-generated chunks
// should skip these documents (errors.Is) rather than abort: an
// all-stopword chunk carries no retrievable signal, and indexing it
// anyway would give it a zero vector norm that can NaN cosine scores.
var ErrNoTerms = errors.New("rag: document has no indexable terms")

// Document is one indexed chunk.
type Document struct {
	ID   string
	Text string
	// Kind tags the source ("knowledge", "diagnosis", "step", ...).
	Kind string
}

// Hit is one retrieval result.
type Hit struct {
	Doc   Document
	Score float64
}

// Index is a TF-IDF inverted index with cosine scoring. The zero value
// is not usable; create with NewIndex. Add all documents before Query.
type Index struct {
	docs []Document
	// termFreq[i] maps term -> frequency within document i.
	termFreq []map[string]float64
	// docFreq maps term -> number of documents containing it.
	docFreq map[string]int
	// norms caches document vector norms, built lazily at first query.
	norms []float64
	built bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{docFreq: map[string]int{}}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Add indexes a document. Adding after a Query is allowed; statistics
// are rebuilt on the next query.
func (ix *Index) Add(doc Document) error {
	if strings.TrimSpace(doc.Text) == "" {
		return fmt.Errorf("%w: %q has no text", ErrNoTerms, doc.ID)
	}
	tf := map[string]float64{}
	for _, tok := range Tokenize(doc.Text) {
		tf[tok]++
	}
	if len(tf) == 0 {
		return fmt.Errorf("%w: %q", ErrNoTerms, doc.ID)
	}
	ix.docs = append(ix.docs, doc)
	ix.termFreq = append(ix.termFreq, tf)
	for term := range tf {
		ix.docFreq[term]++
	}
	ix.built = false
	return nil
}

// idf computes smoothed inverse document frequency.
func (ix *Index) idf(term string) float64 {
	df := ix.docFreq[term]
	if df == 0 {
		return 0
	}
	return math.Log(1+float64(len(ix.docs))/float64(df)) + 1
}

func (ix *Index) build() {
	ix.norms = make([]float64, len(ix.docs))
	for i, tf := range ix.termFreq {
		var sum float64
		for term, f := range tf {
			w := (1 + math.Log(f)) * ix.idf(term)
			sum += w * w
		}
		ix.norms[i] = math.Sqrt(sum)
	}
	ix.built = true
}

// Query returns the top-k documents by TF-IDF cosine similarity.
// Documents with zero overlap are omitted; fewer than k hits may
// return.
func (ix *Index) Query(query string, k int) []Hit {
	if !ix.built {
		ix.build()
	}
	qtf := map[string]float64{}
	for _, tok := range Tokenize(query) {
		qtf[tok]++
	}
	if len(qtf) == 0 || len(ix.docs) == 0 {
		return nil
	}
	var qnorm float64
	qw := map[string]float64{}
	for term, f := range qtf {
		w := (1 + math.Log(f)) * ix.idf(term)
		qw[term] = w
		qnorm += w * w
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm == 0 {
		return nil
	}

	var hits []Hit
	for i, tf := range ix.termFreq {
		var dot float64
		for term, w := range qw {
			if f, ok := tf[term]; ok {
				dot += w * (1 + math.Log(f)) * ix.idf(term)
			}
		}
		if dot <= 0 || ix.norms[i] == 0 {
			continue
		}
		hits = append(hits, Hit{Doc: ix.docs[i], Score: dot / (qnorm * ix.norms[i])})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// stopwords excluded from indexing.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true,
	"of": true, "to": true, "in": true, "on": true, "for": true,
	"is": true, "are": true, "was": true, "be": true, "with": true,
	"that": true, "this": true, "it": true, "its": true, "as": true,
	"by": true, "at": true, "from": true, "into": true, "can": true,
	"do": true, "does": true, "how": true, "what": true, "which": true,
	"when": true, "why": true, "i": true, "my": true, "you": true,
}

// Tokenize lowercases and splits text into alphanumeric terms, dropping
// stopwords and single characters. Underscores stay inside tokens so
// Darshan counter names survive as units.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 1 {
			tok := strings.ToLower(cur.String())
			if !stopwords[tok] {
				out = append(out, tok)
			}
		}
		cur.Reset()
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}
