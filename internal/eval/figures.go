package eval

import (
	"context"
	"fmt"
	"strings"

	"ion/internal/drishti"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/workloads"
)

func reloadExtraction(workDir string) (*extractor.Output, error) {
	out, err := extractor.LoadDir(workDir)
	if err != nil {
		return nil, fmt.Errorf("eval: reloading extraction: %w", err)
	}
	return out, nil
}

// Figure2 runs the six IO500-derived workloads and renders the paper's
// Figure 2: ground truth vs ION output per row, plus the detection
// matrix.
func (r *Runner) Figure2(ctx context.Context) (string, []*Result, error) {
	results, err := r.RunAll(ctx, workloads.Figure2())
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 2. ION diagnosis output compared to ground truth on IO500 workloads\n")
	b.WriteString(strings.Repeat("=", 78) + "\n")
	for _, res := range results {
		fmt.Fprintf(&b, "\n%s\n%s\n", res.Workload.Title, strings.Repeat("-", len(res.Workload.Title)))
		b.WriteString("  Ground truth:\n")
		for _, e := range res.Workload.Truth {
			fmt.Fprintf(&b, "    - %s (%s): %s\n", e.Issue, e.Want, e.Note)
		}
		b.WriteString("  ION output:\n")
		for _, h := range ionHighlights(res.IONReport) {
			fmt.Fprintf(&b, "    - %s\n", h)
		}
		fmt.Fprintf(&b, "  Score: %s\n", res.IONScore)
	}
	b.WriteString("\n" + detectionMatrix(results, false))
	return b.String(), results, nil
}

// Figure3 runs the four application traces and renders the paper's
// Figure 3: ION output vs Drishti output per row, plus both detection
// matrices.
func (r *Runner) Figure3(ctx context.Context) (string, []*Result, error) {
	results, err := r.RunAll(ctx, workloads.Figure3())
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 3. Comparison of ION and Drishti diagnosis for real applications\n")
	b.WriteString(strings.Repeat("=", 78) + "\n")
	for _, res := range results {
		fmt.Fprintf(&b, "\n%s\n%s\n", res.Workload.Title, strings.Repeat("-", len(res.Workload.Title)))
		b.WriteString("  ION output:\n")
		for _, h := range ionHighlights(res.IONReport) {
			fmt.Fprintf(&b, "    - %s\n", h)
		}
		b.WriteString("  Drishti output:\n")
		hs := drishtiHighlights(res.DrishtiRep)
		if len(hs) == 0 {
			b.WriteString("    (no HIGH/WARN insights)\n")
		}
		for _, h := range hs {
			fmt.Fprintf(&b, "    - %s\n", h)
		}
		fmt.Fprintf(&b, "  ION score: %s | Drishti score: %s\n", res.IONScore, res.DrishtiScore)
	}
	b.WriteString("\n" + detectionMatrix(results, true))
	return b.String(), results, nil
}

// detectionMatrix renders a per-issue verdict grid across workloads.
func detectionMatrix(results []*Result, withDrishti bool) string {
	var b strings.Builder
	b.WriteString("Detection matrix (rows: issues; columns: workloads)\n")
	header := fmt.Sprintf("%-20s", "issue")
	for _, res := range results {
		header += fmt.Sprintf(" %-12s", shortName(res.Workload.Name))
	}
	b.WriteString(header + "\n")
	for _, id := range issue.All {
		relevant := false
		row := fmt.Sprintf("%-20s", id)
		for _, res := range results {
			cell := symbol(res, id, withDrishti)
			if strings.TrimSpace(cell) != "." {
				relevant = true
			}
			row += fmt.Sprintf(" %-12s", cell)
		}
		if relevant {
			b.WriteString(row + "\n")
		}
	}
	b.WriteString("legend: D=detected M=mitigated .=clear")
	if withDrishti {
		b.WriteString("; second symbol = Drishti flag (F) or silence (.)")
	}
	b.WriteString("; *=ground-truth mismatch\n")
	return b.String()
}

func symbol(res *Result, id issue.ID, withDrishti bool) string {
	var cell string
	switch res.IONReport.Verdict(id) {
	case issue.VerdictDetected:
		cell = "D"
	case issue.VerdictMitigated:
		cell = "M"
	default:
		cell = "."
	}
	if withDrishti {
		if res.DrishtiRep.Flagged(id) {
			cell += "/F"
		} else {
			cell += "/."
		}
	}
	for _, m := range res.IONScore.Mismatches {
		if m.Issue == id {
			cell += "*"
		}
	}
	return cell
}

func shortName(name string) string {
	name = strings.TrimPrefix(name, "ior-")
	if len(name) > 12 {
		return name[:12]
	}
	return name
}

// PitfallRow is one threshold-sensitivity observation for the §2
// pitfall experiment.
type PitfallRow struct {
	Workload   string
	Threshold  int64 // Drishti's small-request threshold in bytes
	Flagged    bool  // Drishti raised small-I/O
	IONVerdict issue.Verdict
	TruthWant  issue.Verdict
}

// ThresholdPitfall reproduces the paper's §2 argument: Drishti's fixed
// small-request threshold misclassifies boundary workloads in both
// directions, while ION's context-driven verdict stays correct. It
// sweeps the threshold over the small-I/O-relevant workloads.
func (r *Runner) ThresholdPitfall(ctx context.Context, thresholds []int64) (string, []PitfallRow, error) {
	targets := []string{"ior-easy-2k-shared", "ior-easy-1m-shared", "ior-hard"}
	var rows []PitfallRow
	var b strings.Builder
	b.WriteString("Threshold pitfall (paper §2): Drishti small-I/O flag vs ION verdict\n")
	b.WriteString(strings.Repeat("=", 72) + "\n")
	fmt.Fprintf(&b, "%-22s %-12s %-10s %-12s %-10s\n", "workload", "threshold", "drishti", "ion", "truth")
	for _, name := range targets {
		w, err := workloads.ByName(name)
		if err != nil {
			return "", nil, err
		}
		truthWant := issue.VerdictNotDetected
		for _, e := range w.Truth {
			if e.Issue == issue.SmallIO {
				truthWant = e.Want
			}
		}
		for _, th := range thresholds {
			cfg := drishti.DefaultConfig()
			cfg.SmallRequestSize = th
			run := &Runner{Client: r.Client, Drishti: cfg, SkipSummary: true}
			res, err := run.Run(ctx, w)
			if err != nil {
				return "", nil, err
			}
			flagged := res.DrishtiRep.Flagged(issue.SmallIO)
			ionV := res.IONReport.Verdict(issue.SmallIO)
			rows = append(rows, PitfallRow{
				Workload: name, Threshold: th, Flagged: flagged,
				IONVerdict: ionV, TruthWant: truthWant,
			})
			flag := "silent"
			if flagged {
				flag = "FLAGGED"
			}
			fmt.Fprintf(&b, "%-22s %-12d %-10s %-12s %-10s\n", name, th, flag, ionV, truthWant)
		}
	}
	b.WriteString(`
Reading: with the default 1 MiB threshold Drishti flags the aggregatable
2 KiB stream (false alarm: the ground truth is "mitigated") and stays
silent on 1 MiB transfers whatever their pattern; raising the threshold
flags even benign aligned streams. ION's verdict tracks the ground
truth at every threshold because it reasons about aggregation and
stripe conflicts instead of a byte cutoff.
`)
	return b.String(), rows, nil
}
