package eval

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The figure outputs are fully deterministic (simulated expert, seeded
// workloads), so the complete rendered text is kept under testdata/ and
// compared byte-for-byte: any drift in workloads, analyses, planner
// policy, or rendering shows up as a golden diff. Regenerate with:
//
//	go test ./internal/eval -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden output.\nRegenerate with -update after verifying the change is intended.\n--- got (first 2000 bytes) ---\n%.2000s",
			name, got)
	}
}

func TestGoldenFigure2(t *testing.T) {
	text, _, err := runner().Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2.txt", text)
}

func TestGoldenFigure3(t *testing.T) {
	text, _, err := runner().Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure3.txt", text)
}

func TestGoldenPitfall(t *testing.T) {
	text, _, err := runner().ThresholdPitfall(context.Background(), []int64{256 << 10, 1 << 20, 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pitfall.txt", text)
}

func TestGoldenTransferSweep(t *testing.T) {
	text, _, err := runner().TransferSweep(context.Background(),
		[]int64{2 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "transfer_sweep.txt", text)
}

func TestGoldenScaleSweep(t *testing.T) {
	text, _, err := runner().ScaleSweep(context.Background(), []int{2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "scale_sweep.txt", text)
}
