// Package eval is the experiment harness: it regenerates the paper's
// evaluation artifacts — Figure 2 (ION vs ground truth on six IO500
// workloads) and Figure 3 (ION vs Drishti on the OpenPMD and E2E
// application traces) — and quantifies them with detection matrices:
// per-issue verdict matches, missed issues, and false positives.
package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ion/internal/drishti"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/workloads"
)

// Mismatch records one divergence from ground truth.
type Mismatch struct {
	Issue issue.ID
	Want  issue.Verdict
	Got   issue.Verdict
}

// Score grades one tool's output on one workload against ground truth.
type Score struct {
	// Expected is the number of ground-truth entries.
	Expected int
	// Matched counts exact verdict matches.
	Matched int
	// Mismatches lists ground-truth entries with the wrong verdict.
	Mismatches []Mismatch
	// FalsePositives lists issues reported as detected (or flagged)
	// that ground truth does not contain.
	FalsePositives []issue.ID
}

// Perfect reports whether the score has no misses and no false alarms.
func (s Score) Perfect() bool {
	return s.Matched == s.Expected && len(s.FalsePositives) == 0
}

// String summarizes the score.
func (s Score) String() string {
	return fmt.Sprintf("%d/%d matched, %d false positive(s)", s.Matched, s.Expected, len(s.FalsePositives))
}

// ScoreION grades an ION report: every ground-truth entry must carry
// the exact expected verdict, and no unlisted issue may be "detected"
// (a mitigated note on an unlisted issue is fine — that is precisely
// ION's nuance).
func ScoreION(w workloads.Workload, rep *ion.Report) Score {
	var s Score
	want := map[issue.ID]issue.Verdict{}
	for _, e := range w.Truth {
		want[e.Issue] = e.Want
	}
	s.Expected = len(want)
	for id, exp := range want {
		got := rep.Verdict(id)
		if got == exp {
			s.Matched++
		} else {
			s.Mismatches = append(s.Mismatches, Mismatch{Issue: id, Want: exp, Got: got})
		}
	}
	for _, id := range rep.Order {
		if _, listed := want[id]; !listed && rep.Verdict(id) == issue.VerdictDetected {
			s.FalsePositives = append(s.FalsePositives, id)
		}
	}
	return s
}

// ScoreDrishti grades a Drishti report as a binary detector: a
// ground-truth "detected" issue must be flagged (HIGH/WARN); a
// "mitigated" issue must NOT be flagged — a trigger tool that cannot
// express mitigation scores a false alarm there, which is the paper's
// §2 critique; unlisted issues must not be flagged either.
func ScoreDrishti(w workloads.Workload, rep *drishti.Report) Score {
	var s Score
	want := map[issue.ID]issue.Verdict{}
	for _, e := range w.Truth {
		want[e.Issue] = e.Want
	}
	s.Expected = len(want)
	for id, exp := range want {
		flagged := rep.Flagged(id)
		switch {
		case exp == issue.VerdictDetected && flagged:
			s.Matched++
		case exp == issue.VerdictMitigated && !flagged:
			s.Matched++
		case exp == issue.VerdictDetected && !flagged:
			s.Mismatches = append(s.Mismatches, Mismatch{Issue: id, Want: exp, Got: issue.VerdictNotDetected})
		default:
			s.Mismatches = append(s.Mismatches, Mismatch{Issue: id, Want: exp, Got: issue.VerdictDetected})
		}
	}
	for _, id := range issue.All {
		if _, listed := want[id]; !listed && rep.Flagged(id) {
			s.FalsePositives = append(s.FalsePositives, id)
		}
	}
	return s
}

// Result bundles everything computed for one workload.
type Result struct {
	Workload     workloads.Workload
	IONReport    *ion.Report
	DrishtiRep   *drishti.Report
	IONScore     Score
	DrishtiScore Score
}

// Runner executes workloads through both tools.
type Runner struct {
	Client  llm.Client
	Drishti drishti.Config
	// WorkDir is where extractions land; empty uses a temp dir.
	WorkDir string
	// SkipSummary speeds up repeated runs.
	SkipSummary bool
}

// Run generates the workload's trace and analyzes it with ION and
// Drishti.
func (r *Runner) Run(ctx context.Context, w workloads.Workload) (*Result, error) {
	log, err := w.Generate()
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	dir := r.WorkDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "ion-eval-")
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	workDir := filepath.Join(dir, w.Name)

	fw, err := ion.New(ion.Config{Client: r.Client, SkipSummary: r.SkipSummary})
	if err != nil {
		return nil, err
	}
	ionRep, err := fw.AnalyzeLog(ctx, log, w.Title, workDir)
	if err != nil {
		return nil, fmt.Errorf("eval: ION on %s: %w", w.Name, err)
	}

	out, err := reloadExtraction(workDir)
	if err != nil {
		return nil, err
	}
	cfg := r.Drishti
	if cfg == (drishti.Config{}) {
		cfg = drishti.DefaultConfig()
	}
	dRep, err := drishti.Analyze(out, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: Drishti on %s: %w", w.Name, err)
	}

	return &Result{
		Workload:     w,
		IONReport:    ionRep,
		DrishtiRep:   dRep,
		IONScore:     ScoreION(w, ionRep),
		DrishtiScore: ScoreDrishti(w, dRep),
	}, nil
}

// RunAll executes a set of workloads.
func (r *Runner) RunAll(ctx context.Context, ws []workloads.Workload) ([]*Result, error) {
	var out []*Result
	for _, w := range ws {
		res, err := r.Run(ctx, w)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ionHighlights extracts the detected/mitigated conclusions, trimmed,
// for figure rendering.
func ionHighlights(rep *ion.Report) []string {
	var out []string
	for _, id := range rep.Order {
		d := rep.Diagnoses[id]
		if d == nil || d.Verdict == issue.VerdictNotDetected {
			continue
		}
		out = append(out, fmt.Sprintf("[%s|%s] %s", id, d.Verdict, clip(d.Conclusion, 220)))
	}
	return out
}

// drishtiHighlights extracts the HIGH/WARN messages.
func drishtiHighlights(rep *drishti.Report) []string {
	var out []string
	for _, in := range rep.Insights {
		if in.Level == drishti.LevelHigh || in.Level == drishti.LevelWarn {
			out = append(out, fmt.Sprintf("[%s|%s] %s", in.Code, in.Level, clip(in.Message, 180)))
		}
	}
	return out
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
