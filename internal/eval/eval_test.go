package eval

import (
	"context"
	"strings"
	"testing"

	"ion/internal/drishti"
	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/workloads"
)

func runner() *Runner {
	return &Runner{Client: expertsim.New(), SkipSummary: true}
}

func TestScoreIONPerfect(t *testing.T) {
	w := workloads.Workload{
		Truth: []issue.Expectation{
			{Issue: issue.SmallIO, Want: issue.VerdictDetected},
			{Issue: issue.SharedFile, Want: issue.VerdictMitigated},
		},
	}
	rep := &ion.Report{
		Order: []issue.ID{issue.SmallIO, issue.SharedFile, issue.Metadata},
		Diagnoses: map[issue.ID]*ion.IssueDiagnosis{
			issue.SmallIO:    {Verdict: issue.VerdictDetected},
			issue.SharedFile: {Verdict: issue.VerdictMitigated},
			issue.Metadata:   {Verdict: issue.VerdictNotDetected},
		},
	}
	s := ScoreION(w, rep)
	if !s.Perfect() || s.Matched != 2 {
		t.Errorf("score = %+v", s)
	}
}

func TestScoreIONMismatchAndFP(t *testing.T) {
	w := workloads.Workload{
		Truth: []issue.Expectation{{Issue: issue.SmallIO, Want: issue.VerdictMitigated}},
	}
	rep := &ion.Report{
		Order: []issue.ID{issue.SmallIO, issue.Metadata},
		Diagnoses: map[issue.ID]*ion.IssueDiagnosis{
			issue.SmallIO:  {Verdict: issue.VerdictDetected}, // wrong verdict
			issue.Metadata: {Verdict: issue.VerdictDetected}, // unlisted detection
		},
	}
	s := ScoreION(w, rep)
	if s.Matched != 0 || len(s.Mismatches) != 1 || len(s.FalsePositives) != 1 {
		t.Errorf("score = %+v", s)
	}
	if s.Perfect() {
		t.Error("imperfect score reported perfect")
	}
	if !strings.Contains(s.String(), "0/1") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestScoreDrishtiSemantics(t *testing.T) {
	w := workloads.Workload{
		Truth: []issue.Expectation{
			{Issue: issue.SmallIO, Want: issue.VerdictDetected},     // should flag
			{Issue: issue.SharedFile, Want: issue.VerdictMitigated}, // should stay silent
		},
	}
	rep := &drishti.Report{Insights: []drishti.Insight{
		{Code: "D02", Level: drishti.LevelHigh, Issue: issue.SmallIO},
		{Code: "D30", Level: drishti.LevelHigh, Issue: issue.SharedFile},   // false alarm on mitigated
		{Code: "D09", Level: drishti.LevelHigh, Issue: issue.RandomAccess}, // unlisted flag
	}}
	s := ScoreDrishti(w, rep)
	if s.Matched != 1 {
		t.Errorf("matched = %d", s.Matched)
	}
	if len(s.Mismatches) != 1 || s.Mismatches[0].Issue != issue.SharedFile {
		t.Errorf("mismatches = %+v", s.Mismatches)
	}
	if len(s.FalsePositives) != 1 || s.FalsePositives[0] != issue.RandomAccess {
		t.Errorf("false positives = %+v", s.FalsePositives)
	}
}

func TestRunSingleWorkload(t *testing.T) {
	res, err := runner().Run(context.Background(), workloads.IORHard())
	if err != nil {
		t.Fatal(err)
	}
	if !res.IONScore.Perfect() {
		t.Errorf("ION imperfect on ior-hard: %+v", res.IONScore)
	}
	if res.DrishtiRep.TriggersEvaluated == 0 {
		t.Error("Drishti did not run")
	}
}

func TestFigure2Reproduction(t *testing.T) {
	text, results, err := runner().Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("rows = %d, want 6", len(results))
	}
	for _, res := range results {
		if !res.IONScore.Perfect() {
			t.Errorf("%s: ION score %s (mismatches %+v, FPs %v)",
				res.Workload.Name, res.IONScore, res.IONScore.Mismatches, res.IONScore.FalsePositives)
		}
	}
	for _, want := range []string{
		"Figure 2", "IOR-Easy-2KB-Shared-File", "IOR-Hard", "MD-Workbench",
		"Ground truth:", "ION output:", "Detection matrix",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("figure text missing %q", want)
		}
	}
}

func TestFigure3Reproduction(t *testing.T) {
	text, results, err := runner().Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("rows = %d, want 4", len(results))
	}
	for _, res := range results {
		if !res.IONScore.Perfect() {
			t.Errorf("%s: ION score %s", res.Workload.Name, res.IONScore)
		}
		// The paper's claim: ION matches or exceeds Drishti everywhere.
		if res.DrishtiScore.Matched > res.IONScore.Matched {
			t.Errorf("%s: Drishti (%d) beat ION (%d)",
				res.Workload.Name, res.DrishtiScore.Matched, res.IONScore.Matched)
		}
	}
	for _, want := range []string{
		"Figure 3", "OpenPMD (Baseline)", "E2E (Optimized)", "Drishti output:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("figure text missing %q", want)
		}
	}
}

func TestFigure3KeyShapeClaims(t *testing.T) {
	_, results, err := runner().Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	for _, r := range results {
		byName[r.Workload.Name] = r
	}
	// OpenPMD baseline: both tools find small I/O + misalignment; only
	// ION sees the shared-file conflicts and the degraded collectives'
	// aggregation context.
	ob := byName["openpmd-baseline"]
	if ob.IONReport.Verdict(issue.SmallIO) != issue.VerdictDetected || !ob.DrishtiRep.Flagged(issue.SmallIO) {
		t.Error("both tools should find small I/O on openpmd baseline")
	}
	if ob.IONReport.Verdict(issue.SharedFile) != issue.VerdictDetected || ob.DrishtiRep.Flagged(issue.SharedFile) {
		t.Error("only ION should see the shared-file stripe conflicts")
	}
	// OpenPMD optimized: Drishti flags random reads; ION contextualizes
	// them as low-volume.
	oo := byName["openpmd-optimized"]
	if !oo.DrishtiRep.Flagged(issue.RandomAccess) {
		t.Error("Drishti should flag random reads on openpmd optimized")
	}
	if oo.IONReport.Verdict(issue.RandomAccess) != issue.VerdictMitigated {
		t.Error("ION should contextualize the random reads as mitigated")
	}
	// E2E baseline: both find imbalance; ION names rank 0.
	eb := byName["e2e-baseline"]
	if !eb.DrishtiRep.Flagged(issue.LoadImbalance) {
		t.Error("Drishti should flag the load imbalance")
	}
	if d := eb.IONReport.Diagnoses[issue.LoadImbalance]; d == nil || !strings.Contains(d.Conclusion, "rank 0") {
		t.Error("ION should name rank 0")
	}
	// E2E optimized: only ION sees the aggregator subset.
	eo := byName["e2e-optimized"]
	if eo.DrishtiRep.Flagged(issue.LoadImbalance) {
		t.Error("Drishti should not see the subset imbalance")
	}
	if eo.IONReport.Verdict(issue.LoadImbalance) != issue.VerdictMitigated {
		t.Error("ION should report the subset as mitigated/intentional")
	}
}

func TestThresholdPitfall(t *testing.T) {
	text, rows, err := runner().ThresholdPitfall(context.Background(), []int64{1 << 20, 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 workloads x 2 thresholds
		t.Fatalf("rows = %d", len(rows))
	}
	// ION's verdict must be threshold-independent and always correct.
	for _, r := range rows {
		if r.IONVerdict != r.TruthWant {
			t.Errorf("%s@%d: ION verdict %s, truth %s", r.Workload, r.Threshold, r.IONVerdict, r.TruthWant)
		}
	}
	// Drishti must diverge somewhere (that is the pitfall).
	divergent := false
	for _, r := range rows {
		flagMatchesTruth := (r.Flagged && r.TruthWant == issue.VerdictDetected) ||
			(!r.Flagged && r.TruthWant != issue.VerdictDetected)
		if !flagMatchesTruth {
			divergent = true
		}
	}
	if !divergent {
		t.Error("threshold sweep produced no Drishti divergence; pitfall not demonstrated")
	}
	if !strings.Contains(text, "Threshold pitfall") {
		t.Error("pitfall text header missing")
	}
}

func TestAggregateSuperiority(t *testing.T) {
	// Across the whole evaluation, ION's verdict accuracy must strictly
	// exceed Drishti's flag accuracy with no ION false positives — the
	// headline quantitative claim of the reproduction.
	r := runner()
	all := append(workloads.Figure2(), workloads.Figure3()...)
	results, err := r.RunAll(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	var ionHit, dHit, total, ionFP int
	for _, res := range results {
		ionHit += res.IONScore.Matched
		dHit += res.DrishtiScore.Matched
		total += res.IONScore.Expected
		ionFP += len(res.IONScore.FalsePositives)
	}
	if ionHit != total {
		t.Errorf("ION matched %d/%d", ionHit, total)
	}
	if ionFP != 0 {
		t.Errorf("ION false positives: %d", ionFP)
	}
	if dHit >= ionHit {
		t.Errorf("Drishti (%d) not behind ION (%d): comparison shape lost", dHit, ionHit)
	}
}

func TestTransferSweep(t *testing.T) {
	text, rows, err := runner().TransferSweep(context.Background(),
		[]int64{2 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byXfer := map[int64]SweepRow{}
	for _, r := range rows {
		byXfer[r.Transfer] = r
	}
	// Sub-stripe transfers: misaligned, small-io mitigated by aggregation.
	for _, x := range []int64{2 << 10, 256 << 10} {
		if byXfer[x].Misaligned != issue.VerdictDetected {
			t.Errorf("%d: misaligned = %s", x, byXfer[x].Misaligned)
		}
		if byXfer[x].SmallIO != issue.VerdictMitigated {
			t.Errorf("%d: small-io = %s", x, byXfer[x].SmallIO)
		}
		if byXfer[x].AggregatedShare < 0.9 {
			t.Errorf("%d: aggregation share %.2f", x, byXfer[x].AggregatedShare)
		}
	}
	// At and above the stripe boundary: aligned.
	for _, x := range []int64{1 << 20, 4 << 20, 8 << 20} {
		if byXfer[x].Misaligned != issue.VerdictNotDetected {
			t.Errorf("%d: misaligned = %s", x, byXfer[x].Misaligned)
		}
	}
	// Above the RPC size small I/O ceases to exist.
	if byXfer[8<<20].SmallIO != issue.VerdictNotDetected {
		t.Errorf("8MiB: small-io = %s", byXfer[8<<20].SmallIO)
	}
	if !strings.Contains(text, "Transfer-size sweep") {
		t.Error("header missing")
	}
}

func TestScaleSweep(t *testing.T) {
	text, rows, err := runner().ScaleSweep(context.Background(), []int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SharedFile != issue.VerdictDetected {
			t.Errorf("%d ranks: shared-file = %s", r.Ranks, r.SharedFile)
		}
	}
	// Contention grows with scale.
	if !(rows[0].LockConflicts < rows[1].LockConflicts && rows[1].LockConflicts < rows[2].LockConflicts) {
		t.Errorf("lock conflicts not monotone: %+v", rows)
	}
	if !strings.Contains(text, "Rank-scaling sweep") {
		t.Error("header missing")
	}
}
