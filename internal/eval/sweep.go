package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ion/internal/ion"
	"ion/internal/iosim"
	"ion/internal/issue"
	"ion/internal/workloads"
)

// SweepRow is one transfer-size observation.
type SweepRow struct {
	Transfer   int64
	SmallIO    issue.Verdict
	Misaligned issue.Verdict
	// Makespan is the simulated completion time of the run.
	Makespan float64
	// AggregatedShare is the fraction of ops the client cache absorbed.
	AggregatedShare float64
}

// TransferSweep runs the ior-easy shared-file workload across transfer
// sizes and records how ION's verdicts and the simulated performance
// move together: the small-I/O verdict should stay "mitigated" for the
// sequential stream at every size, the misalignment verdict should flip
// exactly at the stripe boundary, and the simulated makespan should
// track the aggregation behavior — verdicts grounded in physics rather
// than thresholds.
func (r *Runner) TransferSweep(ctx context.Context, transfers []int64) (string, []SweepRow, error) {
	fw, err := ion.New(ion.Config{Client: r.Client, SkipSummary: true,
		Issues: []issue.ID{issue.SmallIO, issue.MisalignedIO}})
	if err != nil {
		return "", nil, err
	}
	baseDir := r.WorkDir
	if baseDir == "" {
		baseDir, err = os.MkdirTemp("", "ion-sweep-")
		if err != nil {
			return "", nil, fmt.Errorf("eval: %w", err)
		}
		defer os.RemoveAll(baseDir)
	}

	var rows []SweepRow
	var b strings.Builder
	b.WriteString("Transfer-size sweep: ior-easy shared file, sequential stream\n")
	b.WriteString(strings.Repeat("=", 72) + "\n")
	fmt.Fprintf(&b, "%-12s %-12s %-14s %-14s %-12s\n",
		"transfer", "small-io", "misaligned-io", "makespan(s)", "aggregated")
	for _, xfer := range transfers {
		w := workloads.IOREasy(xfer, true)
		log, stats, err := w.GenerateWithStats()
		if err != nil {
			return "", nil, err
		}
		rep, err := fw.AnalyzeLog(ctx, log, w.Name, filepath.Join(baseDir, fmt.Sprintf("x%d", xfer)))
		if err != nil {
			return "", nil, err
		}
		aggShare := 0.0
		if stats.DataOps > 0 {
			aggShare = float64(stats.AggregatedOps) / float64(stats.DataOps)
		}
		row := SweepRow{
			Transfer:        xfer,
			SmallIO:         rep.Verdict(issue.SmallIO),
			Misaligned:      rep.Verdict(issue.MisalignedIO),
			Makespan:        stats.Makespan,
			AggregatedShare: aggShare,
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "%-12s %-12s %-14s %-14.4f %-12s\n",
			humanSize(xfer), row.SmallIO, row.Misaligned, row.Makespan,
			fmt.Sprintf("%.1f%%", 100*aggShare))
	}
	b.WriteString(`
Reading: sub-stripe transfers are fully misaligned yet stay "mitigated"
on small I/O because the sequential stream aggregates; at the stripe
boundary (1 MiB) misalignment disappears; above the RPC size small I/O
ceases to exist. The verdicts flip exactly where the system facts say
they should, with no tunable thresholds involved.
`)
	return b.String(), rows, nil
}

func humanSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// ScaleRow is one rank-count observation of the scaling sweep.
type ScaleRow struct {
	Ranks         int
	LockConflicts int
	SharedFile    issue.Verdict
	Makespan      float64
}

// ScaleSweep grows the writer count on an interleaved shared-file
// pattern and records how extent-lock contention rises with scale and
// whether ION's shared-file verdict tracks it — the contention-scaling
// experiment a center runs before growing a job.
func (r *Runner) ScaleSweep(ctx context.Context, rankCounts []int) (string, []ScaleRow, error) {
	fw, err := ion.New(ion.Config{Client: r.Client, SkipSummary: true,
		Issues: []issue.ID{issue.SharedFile}})
	if err != nil {
		return "", nil, err
	}
	baseDir := r.WorkDir
	if baseDir == "" {
		baseDir, err = os.MkdirTemp("", "ion-scale-")
		if err != nil {
			return "", nil, fmt.Errorf("eval: %w", err)
		}
		defer os.RemoveAll(baseDir)
	}

	var rows []ScaleRow
	var b strings.Builder
	b.WriteString("Rank-scaling sweep: interleaved 64 KiB writes on one shared file\n")
	b.WriteString(strings.Repeat("=", 68) + "\n")
	fmt.Fprintf(&b, "%-8s %-16s %-14s %-12s\n", "ranks", "lock conflicts", "shared-file", "makespan(s)")
	for _, n := range rankCounts {
		w := interleavedWriters(n)
		log, stats, err := w.GenerateWithStats()
		if err != nil {
			return "", nil, err
		}
		rep, err := fw.AnalyzeLog(ctx, log, w.Name, filepath.Join(baseDir, fmt.Sprintf("r%d", n)))
		if err != nil {
			return "", nil, err
		}
		row := ScaleRow{
			Ranks:         n,
			LockConflicts: stats.LockConflicts,
			SharedFile:    rep.Verdict(issue.SharedFile),
			Makespan:      stats.Makespan,
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "%-8d %-16d %-14s %-12.4f\n", n, row.LockConflicts, row.SharedFile, row.Makespan)
	}
	b.WriteString(`
Reading: interleaving more writers multiplies extent-lock revocations;
the shared-file diagnosis stays "detected" at every scale because the
stripe-conflict analysis sees the interleaving directly, independent of
absolute op counts.
`)
	return b.String(), rows, nil
}

// interleavedWriters builds the scaling workload: n ranks interleave
// 64 KiB records into one shared file.
func interleavedWriters(n int) workloads.Workload {
	const recSize = 64 << 10
	const perRank = 128
	return workloads.Workload{
		Name:        fmt.Sprintf("scale-%dranks", n),
		Title:       fmt.Sprintf("Interleaved writers ×%d", n),
		Description: fmt.Sprintf("%d ranks interleave %d x 64 KiB records on one shared file", n, perRank),
		Exe:         "./scale-probe",
		NProcs:      n,
		Config:      defaultSimConfig,
		Ops: func() []iosim.Op {
			const file = "/lustre/scale/shared.dat"
			var ops []iosim.Op
			for r := 0; r < n; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file})
			}
			for i := 0; i < perRank; i++ {
				for r := 0; r < n; r++ {
					off := int64(i*n+r) * recSize
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: file,
						Offset: off, Size: recSize, MemAligned: true,
					})
				}
			}
			for r := 0; r < n; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file})
			}
			return ops
		},
	}
}

func defaultSimConfig() iosim.Config { return iosim.ExampleConfig() }
