// Package extractor implements the ION Extractor: it unpacks a Darshan
// log and reshapes each module's counter records into CSV files the
// Analyzer's prompts reference — POSIX.csv, MPIIO.csv, STDIO.csv,
// LUSTRE.csv, and DXT.csv — mirroring the paper's design of running
// darshan-parser / darshan-dxt-parser and formatting one CSV per
// module.
package extractor

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ion/internal/darshan"
	"ion/internal/obs"
	"ion/internal/table"
)

// Module table names as written to disk (without the .csv suffix).
const (
	TablePOSIX  = "POSIX"
	TableMPIIO  = "MPIIO"
	TableSTDIO  = "STDIO"
	TableLustre = "LUSTRE"
	TableDXT    = "DXT"
	TableJob    = "JOB"
)

// Fixed leading columns of every module table.
var keyCols = []string{"file_id", "file_name", "rank"}

// DXT table columns.
var dxtCols = []string{
	"file_id", "file_name", "module", "rank", "op",
	"segment", "offset", "length", "start", "end", "osts",
}

// Job table columns (a single-row table with header facts).
var jobCols = []string{
	"exe", "nprocs", "run_time", "start_time", "end_time", "jobid", "uid",
}

// Output is the result of an extraction: the per-module tables, plus
// the paths they were written to when a directory was given.
type Output struct {
	// Tables maps table name (e.g. "POSIX") to its contents.
	Tables map[string]*table.Table
	// Paths maps table name to the CSV path on disk; empty when the
	// extraction was in-memory only.
	Paths map[string]string
	// Header echoes the log's job-level metadata.
	Header darshan.Header
}

// Table returns the named table or nil.
func (o *Output) Table(name string) *table.Table { return o.Tables[name] }

// ModuleNames returns the extracted table names in canonical order.
func (o *Output) ModuleNames() []string {
	canon := []string{TablePOSIX, TableMPIIO, TableSTDIO, TableLustre, TableDXT, TableJob}
	var out []string
	for _, n := range canon {
		if _, ok := o.Tables[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Extract converts a Darshan log into module CSV tables in memory.
func Extract(log *darshan.Log) (*Output, error) {
	return ExtractContext(context.Background(), log)
}

// ExtractContext is Extract with span instrumentation: when ctx carries
// an obs.Tracer, each module's table build is recorded as an
// extract_module span. The per-module tables build concurrently on a
// worker pool bounded by GOMAXPROCS; the log is only read, never
// mutated, so the builders share it without synchronization.
func ExtractContext(ctx context.Context, log *darshan.Log) (*Output, error) {
	type build struct {
		name string
		fn   func() (*table.Table, error)
	}
	var builds []build
	for _, spec := range []struct {
		module string
		name   string
	}{
		{darshan.ModPOSIX, TablePOSIX},
		{darshan.ModMPIIO, TableMPIIO},
		{darshan.ModSTDIO, TableSTDIO},
		{darshan.ModLustre, TableLustre},
	} {
		if !log.HasModule(spec.module) {
			continue
		}
		spec := spec
		builds = append(builds, build{spec.name, func() (*table.Table, error) {
			return moduleTable(log, spec.module, spec.name)
		}})
	}
	if len(log.DXT) > 0 {
		builds = append(builds, build{TableDXT, func() (*table.Table, error) {
			return dxtTable(log)
		}})
	}
	builds = append(builds, build{TableJob, func() (*table.Table, error) {
		return jobTable(log.Header)
	}})

	workers := runtime.GOMAXPROCS(0)
	if workers > len(builds) {
		workers = len(builds)
	}
	tables := make([]*table.Table, len(builds))
	errs := make([]error, len(builds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, b := range builds {
		i, b := i, b
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			_, span := obs.StartSpan(ctx, "extract_module", obs.L("module", b.name))
			tables[i], errs[i] = b.fn()
			span.SetError(errs[i])
			span.End()
		}()
	}
	wg.Wait()

	out := &Output{
		Tables: make(map[string]*table.Table, len(builds)),
		Paths:  map[string]string{},
		Header: log.Header,
	}
	for i, b := range builds {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out.Tables[b.name] = tables[i]
	}
	return out, nil
}

// jobTable renders the single-row job-facts table from the header.
func jobTable(h darshan.Header) (*table.Table, error) {
	job := table.New(TableJob, jobCols)
	if err := job.Append([]string{
		h.Exe,
		strconv.Itoa(h.NProcs),
		formatFloat(h.RunTime),
		strconv.FormatInt(h.StartTime, 10),
		strconv.FormatInt(h.EndTime, 10),
		strconv.FormatInt(h.JobID, 10),
		strconv.Itoa(h.UID),
	}); err != nil {
		return nil, fmt.Errorf("extractor: job table: %w", err)
	}
	return job, nil
}

// ExtractToDir extracts the log and writes each table as <dir>/<name>.csv.
func ExtractToDir(log *darshan.Log, dir string) (*Output, error) {
	return ExtractToDirContext(context.Background(), log, dir)
}

// ExtractToDirContext is ExtractToDir with span instrumentation.
func ExtractToDirContext(ctx context.Context, log *darshan.Log, dir string) (*Output, error) {
	out, err := ExtractContext(ctx, log)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extractor: %w", err)
	}
	for name, t := range out.Tables {
		path := filepath.Join(dir, name+".csv")
		if err := t.WriteFile(path); err != nil {
			return nil, fmt.Errorf("extractor: %w", err)
		}
		out.Paths[name] = path
	}
	return out, nil
}

// ExtractFile loads a Darshan log file (binary container or parser
// text) and extracts it to dir.
func ExtractFile(logPath, dir string) (*Output, error) {
	return ExtractFileContext(context.Background(), logPath, dir)
}

// ExtractFileContext is ExtractFile with span instrumentation: the
// Darshan load is recorded as a parse span.
func ExtractFileContext(ctx context.Context, logPath, dir string) (*Output, error) {
	_, span := obs.StartSpan(ctx, "parse", obs.L("path", logPath))
	log, err := darshan.Load(logPath)
	span.SetError(err)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("extractor: loading %s: %w", logPath, err)
	}
	return ExtractToDirContext(ctx, log, dir)
}

// LoadDir reads previously extracted CSVs back from a directory.
func LoadDir(dir string) (*Output, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("extractor: %w", err)
	}
	out := &Output{Tables: map[string]*table.Table{}, Paths: map[string]string{}}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		path := filepath.Join(dir, e.Name())
		t, err := table.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("extractor: %w", err)
		}
		t.Name = name
		out.Tables[name] = t
		out.Paths[name] = path
	}
	if len(out.Tables) == 0 {
		return nil, fmt.Errorf("extractor: no CSV tables found in %s", dir)
	}
	if job, ok := out.Tables[TableJob]; ok && job.NumRows() > 0 {
		out.Header.Exe, _ = job.Value(0, "exe")
		if v, err := job.Int(0, "nprocs"); err == nil {
			out.Header.NProcs = int(v)
		}
		if v, err := job.Float(0, "run_time"); err == nil {
			out.Header.RunTime = v
		}
	}
	return out, nil
}

// moduleTable flattens one module's records: fixed key columns followed
// by every canonical counter, float counters, and (for Lustre) the
// per-stripe OST id list collapsed into one "OST_IDS" column.
func moduleTable(log *darshan.Log, module, name string) (*table.Table, error) {
	cols := append([]string{}, keyCols...)
	counters := darshan.CountersFor(module)
	fcounters := darshan.FCountersFor(module)
	cols = append(cols, counters...)
	if module == darshan.ModLustre {
		cols = append(cols, "OST_IDS")
	}
	cols = append(cols, fcounters...)
	t := table.New(name, cols)

	recs := append([]*darshan.Record(nil), log.Modules[module].Records...)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].FileID != recs[j].FileID {
			return recs[i].FileID < recs[j].FileID
		}
		return recs[i].Rank < recs[j].Rank
	})
	t.Grow(len(recs))
	w := table.NewRowWriter(t)
	var ostKey []byte // scratch for LUSTRE_OST_ID_<k> map keys
	for _, r := range recs {
		w.Uint(r.FileID)
		w.String(log.Name(r.FileID))
		w.Int(r.Rank)
		for _, c := range counters {
			w.Int(r.Counters[c])
		}
		if module == darshan.ModLustre {
			width := r.Counters[darshan.CLustreStripeWidth]
			for k := int64(0); k < width; k++ {
				if k > 0 {
					w.PartSep(';')
				}
				ostKey = append(ostKey[:0], "LUSTRE_OST_ID_"...)
				ostKey = strconv.AppendInt(ostKey, k, 10)
				w.PartInt(r.Counters[string(ostKey)])
			}
			w.EndCell()
		}
		for _, c := range fcounters {
			w.Float(r.FCounters[c])
		}
		if err := w.EndRow(); err != nil {
			return nil, fmt.Errorf("extractor: %w", err)
		}
	}
	return t, nil
}

func dxtTable(log *darshan.Log) (*table.Table, error) {
	t := table.New(TableDXT, dxtCols)
	total := 0
	for _, tr := range log.DXT {
		total += len(tr.Events)
	}
	t.Grow(total)
	w := table.NewRowWriter(t)
	for _, tr := range log.DXT {
		name := log.Name(tr.FileID)
		for _, ev := range tr.Events {
			w.Uint(tr.FileID)
			w.String(name)
			w.String(ev.Module)
			w.Int(ev.Rank)
			w.String(string(ev.Op))
			w.Int(ev.Segment)
			w.Int(ev.Offset)
			w.Int(ev.Length)
			w.Float(ev.Start)
			w.Float(ev.End)
			for i, o := range ev.OSTs {
				if i > 0 {
					w.PartSep(';')
				}
				w.PartInt(int64(o))
			}
			w.EndCell()
			if err := w.EndRow(); err != nil {
				return nil, fmt.Errorf("extractor: %w", err)
			}
		}
	}
	return t, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
