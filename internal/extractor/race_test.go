package extractor

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"ion/internal/obs"
)

// TestExtractContextConcurrent runs many extractions of a shared,
// read-only log at once. The parallel module builders inside each
// ExtractContext call plus the cross-call concurrency make this an
// effective probe under -race: the log must only ever be read, and the
// outputs must not share mutable state.
func TestExtractContextConcurrent(t *testing.T) {
	log := testLog(t)
	want, err := Extract(log)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV bytes.Buffer
	if err := want.Table(TablePOSIX).Write(&wantCSV); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	outs := make([]*Output, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tracer := obs.NewTracer()
			ctx := obs.WithTracer(context.Background(), tracer)
			out, err := ExtractContext(ctx, log)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()

	for i, out := range outs {
		if out == nil {
			continue // error already reported
		}
		if len(out.Tables) != len(want.Tables) {
			t.Fatalf("goroutine %d: %d tables, want %d", i, len(out.Tables), len(want.Tables))
		}
		var got bytes.Buffer
		if err := out.Table(TablePOSIX).Write(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), wantCSV.Bytes()) {
			t.Fatalf("goroutine %d: POSIX table differs from serial extraction", i)
		}
	}
}

// TestExtractContextSpanPerModule checks the worker pool still emits
// one extract_module span per table it builds.
func TestExtractContextSpanPerModule(t *testing.T) {
	log := testLog(t)
	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	out, err := ExtractContext(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, sp := range tracer.Timeline().Spans {
		if sp.Name == "extract_module" {
			spans++
		}
	}
	if spans != len(out.Tables) {
		t.Fatalf("extract_module spans = %d, want one per table (%d)", spans, len(out.Tables))
	}
}
