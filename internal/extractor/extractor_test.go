package extractor

import (
	"testing"

	"ion/internal/darshan"
	"ion/internal/workloads"
)

func testLog(t *testing.T) *darshan.Log {
	t.Helper()
	w, err := workloads.ByName("ior-easy-2k-shared")
	if err != nil {
		t.Fatal(err)
	}
	log, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestExtractTables(t *testing.T) {
	log := testLog(t)
	out, err := Extract(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TablePOSIX, TableLustre, TableDXT, TableJob} {
		if out.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
	}
	if out.Table(TableMPIIO) != nil {
		t.Error("POSIX-only workload must not produce an MPIIO table")
	}

	posix := out.Table(TablePOSIX)
	if posix.NumRows() != 1 {
		t.Fatalf("POSIX rows = %d, want 1 shared record", posix.NumRows())
	}
	reads, err := posix.Int(0, darshan.CPosixReads)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 4096 {
		t.Errorf("POSIX_READS = %d, want 4096", reads)
	}
	name, err := posix.Value(0, "file_name")
	if err != nil {
		t.Fatal(err)
	}
	if name != "/lustre/ior-easy/testfile" {
		t.Errorf("file_name = %q", name)
	}
	rank, err := posix.Int(0, "rank")
	if err != nil {
		t.Fatal(err)
	}
	if rank != -1 {
		t.Errorf("rank = %d, want shared (-1)", rank)
	}

	// DXT row count equals total data ops.
	dxt := out.Table(TableDXT)
	if int64(dxt.NumRows()) != log.TotalOps() {
		t.Errorf("DXT rows = %d, total ops = %d", dxt.NumRows(), log.TotalOps())
	}

	// Lustre stripe info is present and plausible.
	lustre := out.Table(TableLustre)
	ss, err := lustre.Int(0, darshan.CLustreStripeSize)
	if err != nil {
		t.Fatal(err)
	}
	if ss != 1<<20 {
		t.Errorf("stripe size = %d", ss)
	}
	ids, err := lustre.Value(0, "OST_IDS")
	if err != nil {
		t.Fatal(err)
	}
	if ids == "" {
		t.Error("OST_IDS empty")
	}

	// Job table carries the header.
	job := out.Table(TableJob)
	nprocs, err := job.Int(0, "nprocs")
	if err != nil {
		t.Fatal(err)
	}
	if nprocs != 4 {
		t.Errorf("nprocs = %d", nprocs)
	}
}

func TestExtractToDirAndLoadDir(t *testing.T) {
	log := testLog(t)
	dir := t.TempDir()
	out, err := ExtractToDir(log, dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, path := range out.Paths {
		if path == "" {
			t.Errorf("table %s has no path", name)
		}
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.NProcs != 4 {
		t.Errorf("reloaded nprocs = %d", back.Header.NProcs)
	}
	posix := back.Table(TablePOSIX)
	if posix == nil {
		t.Fatal("POSIX table missing after reload")
	}
	orig := out.Table(TablePOSIX)
	if posix.NumRows() != orig.NumRows() {
		t.Errorf("rows changed through disk: %d vs %d", posix.NumRows(), orig.NumRows())
	}
	for j, c := range orig.Cols {
		if posix.Cols[j] != c {
			t.Errorf("column %d changed: %q vs %q", j, posix.Cols[j], c)
		}
	}
}

func TestExtractFileFromBinaryLog(t *testing.T) {
	log := testLog(t)
	dir := t.TempDir()
	logPath := dir + "/trace.darshan"
	if err := log.WriteFile(logPath); err != nil {
		t.Fatal(err)
	}
	out, err := ExtractFile(logPath, dir+"/csv")
	if err != nil {
		t.Fatal(err)
	}
	if out.Table(TablePOSIX) == nil {
		t.Error("POSIX table missing from file extraction")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := LoadDir("/nonexistent-dir-xyz"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestDXTOrderingAndTypes(t *testing.T) {
	log := testLog(t)
	out, err := Extract(log)
	if err != nil {
		t.Fatal(err)
	}
	dxt := out.Table(TableDXT)
	prev := -1.0
	for i := 0; i < dxt.NumRows(); i++ {
		start, err := dxt.Float(i, "start")
		if err != nil {
			t.Fatal(err)
		}
		end, err := dxt.Float(i, "end")
		if err != nil {
			t.Fatal(err)
		}
		if end < start {
			t.Fatalf("row %d: end %v < start %v", i, end, start)
		}
		if start < prev {
			t.Fatalf("row %d: DXT not time-ordered", i)
		}
		prev = start
		op, err := dxt.Value(i, "op")
		if err != nil {
			t.Fatal(err)
		}
		if op != "read" && op != "write" {
			t.Fatalf("row %d: bad op %q", i, op)
		}
		if _, err := dxt.Int(i, "offset"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestModuleNamesOrder(t *testing.T) {
	log := testLog(t)
	out, err := Extract(log)
	if err != nil {
		t.Fatal(err)
	}
	names := out.ModuleNames()
	if len(names) == 0 || names[0] != TablePOSIX {
		t.Errorf("module order wrong: %v", names)
	}
	// JOB always last of the canonical list present.
	if names[len(names)-1] != TableJob {
		t.Errorf("JOB should be last: %v", names)
	}
}

func TestHistogramColumnsSumToOps(t *testing.T) {
	log := testLog(t)
	out, err := Extract(log)
	if err != nil {
		t.Fatal(err)
	}
	posix := out.Table(TablePOSIX)
	for i := 0; i < posix.NumRows(); i++ {
		var sum int64
		for _, b := range darshan.SizeBins {
			v, err := posix.Int(i, "POSIX_SIZE_WRITE_"+b.Suffix)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		writes, err := posix.Int(i, darshan.CPosixWrites)
		if err != nil {
			t.Fatal(err)
		}
		if sum != writes {
			t.Errorf("row %d: histogram sums to %d, writes = %d", i, sum, writes)
		}
	}
}
