package consistency

import (
	"context"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/testutil"
	"ion/internal/workloads"
)

func reportFor(t *testing.T, name string) (*ion.Report, *Result) {
	t.Helper()
	out, _, err := testutil.Extracted(name)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	return rep, res
}

func TestExpertReportsAreConsistent(t *testing.T) {
	// The deterministic expert computes its verdicts from the same
	// metrics the checker verifies: every workload must check clean of
	// error-level violations.
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, res := reportFor(t, w.Name)
			if !res.Consistent() {
				t.Errorf("violations: %+v", res.Violations)
			}
			if res.RulesChecked < 10 {
				t.Errorf("rules checked = %d", res.RulesChecked)
			}
		})
	}
}

// tamper flips a verdict to simulate a hallucinating backend.
func tamper(rep *ion.Report, id issue.ID, v issue.Verdict) {
	d, ok := rep.Diagnoses[id]
	if !ok {
		d = &ion.IssueDiagnosis{Issue: id, Title: issue.Title(id)}
		rep.Diagnoses[id] = d
		rep.Order = append(rep.Order, id)
	}
	d.Verdict = v
}

func TestCatchesUnsupportedDetection(t *testing.T) {
	// ior-easy-1m-shared has 0% misalignment; claiming misaligned-io
	// detected must be flagged.
	rep, _ := reportFor(t, "ior-easy-1m-shared")
	out, _, err := testutil.Extracted("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	tamper(rep, issue.MisalignedIO, issue.VerdictDetected)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent() {
		t.Error("hallucinated misalignment not caught")
	}
	found := false
	for _, v := range res.Violations {
		if v.Rule == "alignment-support" && v.Severity == SeverityError {
			found = true
		}
	}
	if !found {
		t.Errorf("expected alignment-support violation, got %+v", res.Violations)
	}
}

func TestCatchesMissedDominantSignal(t *testing.T) {
	// ior-hard is 100% tiny ops; claiming small-io not-detected must be
	// flagged.
	rep, _ := reportFor(t, "ior-hard")
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	tamper(rep, issue.SmallIO, issue.VerdictNotDetected)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent() {
		t.Error("missed dominant small-I/O signal not caught")
	}
}

func TestCatchesCrossIssueContradiction(t *testing.T) {
	// POSIX-only interface issue + MPI-IO collective issue cannot both
	// hold.
	rep, _ := reportFor(t, "ior-hard")
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	tamper(rep, issue.CollectiveIO, issue.VerdictDetected)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, v := range res.Violations {
		if v.Rule == "interface-vs-collective" {
			found = true
		}
	}
	if !found {
		t.Errorf("contradiction not caught: %+v", res.Violations)
	}
}

func TestCatchesSharedFileOnFPP(t *testing.T) {
	rep, _ := reportFor(t, "ior-easy-1m-fpp")
	out, _, err := testutil.Extracted("ior-easy-1m-fpp")
	if err != nil {
		t.Fatal(err)
	}
	tamper(rep, issue.SharedFile, issue.VerdictDetected)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent() {
		t.Error("shared-file detection on FPP trace not caught")
	}
}

func TestCatchesSmallVsRandomContradiction(t *testing.T) {
	// ior-rnd4k: small-io mitigated (aggregation) + random detected is
	// contradictory because the stream is NOT consecutive.
	rep, _ := reportFor(t, "ior-rnd4k")
	out, _, err := testutil.Extracted("ior-rnd4k")
	if err != nil {
		t.Fatal(err)
	}
	tamper(rep, issue.SmallIO, issue.VerdictMitigated)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, v := range res.Violations {
		if v.Rule == "small-vs-random" {
			found = true
		}
	}
	if !found {
		t.Errorf("small-vs-random contradiction not caught: %+v", res.Violations)
	}
}

func TestWarnOnImbalanceWithoutTimeSkew(t *testing.T) {
	rep, _ := reportFor(t, "ior-easy-1m-shared")
	out, _, err := testutil.Extracted("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	// Hallucinate both an imbalance and uniform times: the checker
	// raises the support error AND the cross-check warning.
	tamper(rep, issue.LoadImbalance, issue.VerdictDetected)
	tamper(rep, issue.TimeImbalance, issue.VerdictNotDetected)
	res, err := Check(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	var warned bool
	for _, v := range res.Violations {
		if v.Rule == "imbalance-vs-time" && v.Severity == SeverityWarn {
			warned = true
		}
	}
	if !warned {
		t.Errorf("warning not raised: %+v", res.Violations)
	}
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}
