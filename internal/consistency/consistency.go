// Package consistency implements the diagnosis consistency checking the
// paper lists as planned work (§5): after the Analyzer collects the
// per-issue completions, the checker (1) re-derives the ground metrics
// from the extracted trace and verifies each verdict against them
// (catching a model that hallucinated a conclusion its own numbers do
// not support), and (2) applies cross-issue coherence rules (two
// diagnoses asserting physically contradictory facts about the same
// trace). With the deterministic expert backend the checker passes by
// construction; against a live LLM it is the guardrail.
package consistency

import (
	"fmt"

	"ion/internal/analysis"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
)

// Severity grades a violation.
type Severity string

// Violation severities: Error marks a verdict the trace contradicts;
// Warn marks a suspicious combination worth a second completion pass.
const (
	SeverityError Severity = "error"
	SeverityWarn  Severity = "warn"
)

// Violation is one failed consistency rule.
type Violation struct {
	Rule     string
	Severity Severity
	Issues   []issue.ID
	Detail   string
}

// Result is the checker's output.
type Result struct {
	Violations []Violation
	// RulesChecked counts evaluated rules, for reporting.
	RulesChecked int
}

// Consistent reports whether no error-level violation was found.
func (r *Result) Consistent() bool {
	for _, v := range r.Violations {
		if v.Severity == SeverityError {
			return false
		}
	}
	return true
}

// Check verifies a report against its extracted trace.
func Check(rep *ion.Report, out *extractor.Output) (*Result, error) {
	if rep == nil || out == nil {
		return nil, fmt.Errorf("consistency: report and extraction are required")
	}
	env := analysis.NewEnv(out, knowledge.FromExtract(out))
	res := &Result{}

	checks := []func(*ion.Report, *analysis.Env, *Result) error{
		verifySmallIO,
		verifyAlignment,
		verifyRandom,
		verifySharedFile,
		verifyImbalance,
		verifyMetadata,
		verifyInterface,
		crossSmallVsRandom,
		crossInterfaceVsCollective,
		crossSharedVsFPP,
		crossImbalanceVsTime,
	}
	for _, c := range checks {
		res.RulesChecked++
		if err := c(rep, env, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func add(res *Result, rule string, sev Severity, detail string, issues ...issue.ID) {
	res.Violations = append(res.Violations, Violation{
		Rule: rule, Severity: sev, Issues: issues, Detail: detail,
	})
}

// --- ground-metric verification ---

// verifySmallIO: a detected small-I/O issue needs a meaningful small
// share; a not-detected verdict contradicts a dominant small share.
func verifySmallIO(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.SmallIO)
	r, err := analysis.SmallIO(env)
	if err != nil {
		return nil // no DXT: nothing to verify against
	}
	switch v {
	case issue.VerdictDetected:
		if r.TinyShare < 0.05 && r.SmallShare < 0.05 {
			add(res, "small-io-support", SeverityError,
				fmt.Sprintf("small-io detected but only %s of ops are below the RPC size", analysis.Pct(r.SmallShare)),
				issue.SmallIO)
		}
	case issue.VerdictNotDetected:
		if r.TinyShare > 0.5 {
			add(res, "small-io-support", SeverityError,
				fmt.Sprintf("small-io not-detected but %s of ops are below the stripe unit", analysis.Pct(r.TinyShare)),
				issue.SmallIO)
		}
	}
	return nil
}

func verifyAlignment(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.MisalignedIO)
	r, err := analysis.Alignment(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.FileShare < 0.02 {
		add(res, "alignment-support", SeverityError,
			fmt.Sprintf("misaligned-io detected but the counter share is %s", analysis.Pct(r.FileShare)),
			issue.MisalignedIO)
	}
	if v == issue.VerdictNotDetected && r.FileShare > 0.5 {
		add(res, "alignment-support", SeverityError,
			fmt.Sprintf("misaligned-io not-detected but the counter share is %s", analysis.Pct(r.FileShare)),
			issue.MisalignedIO)
	}
	return nil
}

func verifyRandom(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.RandomAccess)
	r, err := analysis.Pattern(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.NonContigShare < 0.02 {
		add(res, "random-support", SeverityError,
			fmt.Sprintf("random-access detected but only %s of accesses are non-contiguous", analysis.Pct(r.NonContigShare)),
			issue.RandomAccess)
	}
	return nil
}

func verifySharedFile(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.SharedFile)
	r, err := analysis.SharedFile(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.SharedFiles == 0 {
		add(res, "shared-file-support", SeverityError,
			"shared-file contention detected but no file is accessed by more than one rank",
			issue.SharedFile)
	}
	if v == issue.VerdictDetected && r.ConflictStripes == 0 && r.OverlapEvents == 0 {
		add(res, "shared-file-support", SeverityError,
			"shared-file contention detected but no stripe is shared between writers",
			issue.SharedFile)
	}
	return nil
}

func verifyImbalance(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.LoadImbalance)
	r, err := analysis.Imbalance(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.ImbalancePct < 0.3 {
		add(res, "imbalance-support", SeverityError,
			fmt.Sprintf("load-imbalance detected but the imbalance metric is %s", analysis.Pct(r.ImbalancePct)),
			issue.LoadImbalance)
	}
	return nil
}

func verifyMetadata(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.Metadata)
	r, err := analysis.Metadata(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.Ratio < 0.1 && r.TimeShare < 0.1 {
		add(res, "metadata-support", SeverityError,
			fmt.Sprintf("metadata issue detected but the op ratio is %.3f and time share %s", r.Ratio, analysis.Pct(r.TimeShare)),
			issue.Metadata)
	}
	return nil
}

func verifyInterface(rep *ion.Report, env *analysis.Env, res *Result) error {
	v := rep.Verdict(issue.Interface)
	r, err := analysis.Interface(env)
	if err != nil {
		return nil
	}
	if v == issue.VerdictDetected && r.UsesMPIIO {
		add(res, "interface-support", SeverityError,
			"interface issue (POSIX-only) detected but the MPI-IO module carries data operations",
			issue.Interface)
	}
	return nil
}

// --- cross-issue coherence ---

// crossSmallVsRandom: claiming small I/O is mitigated *by aggregation*
// while also claiming the access pattern is dominantly random asserts
// contradictory facts about the same offset stream.
func crossSmallVsRandom(rep *ion.Report, env *analysis.Env, res *Result) error {
	if rep.Verdict(issue.SmallIO) == issue.VerdictMitigated &&
		rep.Verdict(issue.RandomAccess) == issue.VerdictDetected {
		// Only contradictory when the mitigation argument is aggregation
		// (consecutiveness); verify against the trace.
		r, err := analysis.SmallIO(env)
		if err == nil && r.ConsecShare > 0.5 {
			return nil // consecutive AND some random elsewhere can coexist across files
		}
		add(res, "small-vs-random", SeverityError,
			"small-io called mitigated (aggregation) while random-access is detected on the same stream",
			issue.SmallIO, issue.RandomAccess)
	}
	return nil
}

// crossInterfaceVsCollective: a POSIX-only diagnosis contradicts a
// collective-I/O diagnosis, which requires MPI-IO activity.
func crossInterfaceVsCollective(rep *ion.Report, env *analysis.Env, res *Result) error {
	if rep.Verdict(issue.Interface) == issue.VerdictDetected &&
		rep.Verdict(issue.CollectiveIO) == issue.VerdictDetected {
		add(res, "interface-vs-collective", SeverityError,
			"POSIX-only interface issue and MPI-IO collective issue detected simultaneously",
			issue.Interface, issue.CollectiveIO)
	}
	return nil
}

// crossSharedVsFPP: shared-file contention alongside an interface
// analysis that found zero shared files.
func crossSharedVsFPP(rep *ion.Report, env *analysis.Env, res *Result) error {
	if rep.Verdict(issue.SharedFile) != issue.VerdictDetected {
		return nil
	}
	r, err := analysis.Interface(env)
	if err != nil {
		return nil
	}
	if r.SharedFiles == 0 {
		add(res, "shared-vs-fpp", SeverityError,
			"shared-file contention detected in a file-per-process trace",
			issue.SharedFile, issue.Interface)
	}
	return nil
}

// crossImbalanceVsTime: a severe byte imbalance without any time
// divergence is suspicious (warn: the overloaded rank may overlap its
// I/O, but it usually shows up in time too).
func crossImbalanceVsTime(rep *ion.Report, env *analysis.Env, res *Result) error {
	if rep.Verdict(issue.LoadImbalance) == issue.VerdictDetected &&
		rep.Verdict(issue.TimeImbalance) == issue.VerdictNotDetected {
		add(res, "imbalance-vs-time", SeverityWarn,
			"byte load imbalance detected while rank I/O times are uniform — worth a second pass",
			issue.LoadImbalance, issue.TimeImbalance)
	}
	return nil
}
