package expertsim

import (
	"fmt"
	"strings"

	"ion/internal/analysis"
	"ion/internal/issue"
)

// The planners below encode the reasoning policy of the simulated
// expert: which metrics to compute for each issue, how to weigh them,
// and when a pathology's signature is neutralized by a mitigating
// condition. The numeric cutoffs are the expert's judgment calls (the
// analogue of what the paper's LLM absorbed from the issue context),
// not user-facing configuration — ION itself stays threshold-free: its
// inputs are the system facts (stripe size, RPC size) only.

func pct(f float64) string { return analysis.Pct(f) }

// --- small-io ---

func planSmallIO(env *analysis.Env) (plan, error) {
	r, err := analysis.SmallIO(env)
	if err != nil {
		return plan{}, err
	}
	sf, err := analysis.SharedFile(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Computed the access-size distribution from DXT.csv: %d of %d operations (%s) transfer less than the %d-byte stripe unit, and %d (%s) stay below the %d-byte RPC size.",
			r.TinyOps, r.TotalOps, pct(r.TinyShare), r.StripeSize, r.SmallOps, pct(r.SmallShare), r.RPCSize),
		fmt.Sprintf("Measured the data volume carried by sub-RPC operations: %d of %d bytes (%s).",
			r.SmallBytes, r.TotalBytes, pct(r.VolumeShare)),
		fmt.Sprintf("Checked aggregation potential by walking each rank's offset sequence: %d of the %d small operations (%s) start exactly where the rank's previous access ended, so the client cache can coalesce them into bulk RPCs.",
			r.ConsecSmall, r.SmallOps, pct(r.ConsecShare)),
		fmt.Sprintf("Cross-checked whether aggregation is undermined by stripe sharing: %s of write operations land on stripes also written by other ranks.",
			pct(sf.WritesOnSharedShare)),
	}
	code := pySmallIO(r)

	var verdict issue.Verdict
	var concl strings.Builder
	interference := sf.ConflictShare > 0.1 || sf.WritesOnSharedShare > 0.1
	switch {
	case r.SmallOps == 0:
		verdict = issue.VerdictNotDetected
		concl.WriteString("No small I/O detected: every operation meets or exceeds the bulk-RPC size, so the storage servers see full-sized transfers.")
	case r.TinyShare >= 0.5 && (r.ConsecShare < 0.5 || interference):
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "The application exhibits a repetitive pattern of small requests: %s of all I/O operations (%d of %d) are smaller than the %d-byte stripe unit, and these requests reach the servers as-is — ",
			pct(r.TinyShare), r.TinyOps, r.TotalOps, r.StripeSize)
		if r.ConsecShare < 0.5 {
			fmt.Fprintf(&concl, "only %s of them are consecutive with the rank's previous access, so client-side aggregation cannot absorb them. ", pct(r.ConsecShare))
		} else {
			fmt.Fprintf(&concl, "although %s are consecutive, %s of writes land on stripes shared with other ranks, so the coalesced RPCs still collide at the OSTs. ",
				pct(r.ConsecShare), pct(sf.WritesOnSharedShare))
		}
		concl.WriteString("Each such request pays a full network round trip and server dispatch for little data, underutilizing the RPC mechanism; batching requests or moving to a library that aggregates (MPI-IO collectives, HDF5 with proper chunking) would remove this bottleneck.")
	case r.TinyShare >= 0.5:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "I/O operations are small (%s below the stripe unit) and target largely sequential, consecutive offsets: %d of %d small operations (%s) are potentially aggregatable, which allows the client write-back/read-ahead cache to coalesce them into bulk RPCs and mitigates the inefficiency small requests would otherwise cause.",
			pct(r.TinyShare), r.AggPotential, r.SmallOps, pct(r.ConsecShare))
	case r.SmallShare >= 0.9 && r.ConsecShare >= 0.5:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "Operations are smaller than the configured RPC size of %d bytes (%s of operations), but they are consecutive (%s), so high aggregation into full-size RPCs is expected and the pattern should not cause inefficiency.",
			r.RPCSize, pct(r.SmallShare), pct(r.ConsecShare))
	case r.TinyShare >= 0.01:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "Only %s of total I/O operations are small (%d operations), moving %s of the data volume; the per-rank count (%.1f small operations per active rank) and the transferred volume are low, so small I/O is not affecting the application's overall I/O performance.",
			pct(r.TinyShare), r.TinyOps, pct(r.VolumeShare), r.PerRankSmall)
	default:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "A negligible number of operations (%d, %s) fall below the RPC size; no meaningful impact on performance.",
			r.SmallOps, pct(r.SmallShare))
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- misaligned-io ---

func planAlignment(env *analysis.Env) (plan, error) {
	r, err := analysis.Alignment(env)
	if err != nil {
		// No POSIX module (e.g. an STDIO-only trace): alignment
		// counters do not exist, so there is nothing to flag.
		return plan{
			Steps:      []string{"Looked for the POSIX module: the trace records no POSIX activity, so the alignment counters (POSIX_FILE_NOT_ALIGNED) are absent."},
			Code:       "import os\nprint(os.path.exists(\"POSIX.csv\"))  # -> False",
			Conclusion: "The trace contains no POSIX-level activity; file-alignment analysis does not apply to this run.",
			Verdict:    issue.VerdictNotDetected,
		}, nil
	}
	steps := []string{
		fmt.Sprintf("Summed POSIX_FILE_NOT_ALIGNED across records: %d of %d operations (%s) are misaligned relative to the %d-byte file alignment boundary.",
			r.FileMis, r.TotalOps, pct(r.FileShare), r.FileAlignment),
		fmt.Sprintf("Summed POSIX_MEM_NOT_ALIGNED: %d operations (%s) used misaligned memory buffers.",
			r.MemMis, pct(r.MemShare)),
	}
	if r.WorstFile != "" && r.WorstFileMis > 0 {
		steps = append(steps, fmt.Sprintf("Identified the most affected file: %s with %d misaligned accesses.",
			r.WorstFile, r.WorstFileMis))
	}
	code := pyAlignment(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case r.FileShare < 0.005 && r.MemShare < 0.5:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "The trace shows a %s misalignment rate for a total of %d I/O operations: accesses fall on the %d-byte alignment boundary, so no read-modify-write cycles or widened lock ranges are expected.",
			pct(r.FileShare), r.TotalOps, r.FileAlignment)
	case r.FileShare < 0.1:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "A small fraction of accesses is misaligned (%d operations, %s), largely attributable to header/metadata structures; at this volume the read-modify-write overhead is negligible.",
			r.FileMis, pct(r.FileShare))
	default:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "Significant file misalignment detected, affecting %s of I/O operations (%d of %d): the POSIX_FILE_NOT_ALIGNED counter indicates accesses straddle the %d-byte stripe boundary, which forces read-modify-write cycles within stripe units, can double the OSTs touched per access, and widens extent-lock ranges — contributing to performance degradation through increased contention",
			pct(r.FileShare), r.FileMis, r.TotalOps, r.FileAlignment)
		if r.WorstFile != "" {
			fmt.Fprintf(&concl, " (most affected: %s)", r.WorstFile)
		}
		concl.WriteString(". Aligning record sizes to the stripe unit, or setting library alignment parameters (e.g. H5Pset_alignment, MPI-IO striping hints), would remove the penalty.")
		if r.MemShare > 0.5 {
			fmt.Fprintf(&concl, " The trace additionally shows misaligned memory accesses on %s of operations.", pct(r.MemShare))
		}
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- random-access ---

func planRandom(env *analysis.Env) (plan, error) {
	r, err := analysis.Pattern(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Classified each rank's successive accesses from DXT.csv: of %d classified operations, %d are consecutive (%s), %d re-access the previous extent, %d jump forward over a gap, and %d move backwards.",
			r.Classified, r.Consecutive, pct(r.ConsecShare), r.Repeats, r.ForwardJumps, r.BackwardJumps),
		fmt.Sprintf("Quantified the non-contiguous share: %s of accesses (%d operations), moving %s of the total data volume.",
			pct(r.NonContigShare), r.NonContig, pct(r.RandomVolumeShare)),
		fmt.Sprintf("Measured the per-rank spread: ranks that issue non-contiguous accesses average %.1f such operations each; %s of read operations are non-sequential.",
			r.PerRankRandomMean, pct(r.RandomReadShare)),
	}
	code := pyPattern(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case r.Classified == 0 || r.NonContig == 0:
		verdict = issue.VerdictNotDetected
		concl.WriteString("Access patterns are consecutive and sequential: each rank advances monotonically through its file region, so read-ahead and write-back caching work at full effectiveness. No random access behavior detected.")
	case r.NonContigShare >= 0.5:
		verdict = issue.VerdictDetected
		if r.BackwardShare >= 0.2 {
			fmt.Fprintf(&concl, "The trace shows random I/O operations: %s of accesses are non-contiguous (%d forward jumps, %d backward jumps), defeating read-ahead and preventing any client-side coalescing. ",
				pct(r.NonContigShare), r.ForwardJumps, r.BackwardJumps)
		} else {
			fmt.Fprintf(&concl, "The trace shows a strided, non-contiguous access pattern: %s of accesses jump over gaps between a rank's successive operations. Darshan counts these as 'sequential' (offsets increase), but they cannot be coalesced into bulk transfers and behave like random I/O at the servers. ",
				pct(r.NonContigShare))
		}
		fmt.Fprintf(&concl, "These non-contiguous operations carry %s of the total data volume, so the performance concern related to random access patterns applies to the bulk of this application's I/O; restructuring toward contiguous per-rank regions or using MPI-IO collective buffering would consolidate them.",
			pct(r.RandomVolumeShare))
	case r.NonContigShare >= 0.02:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "Some operations use random access patterns (%s of classified accesses, %s of read operations). However, the random-access operation count per rank (%.1f on average) and the total volume of data transferred through these patterns (%s) are low — consistent with lookups into a self-describing file structure — and are not affecting the entire application's I/O performance.",
			pct(r.NonContigShare), pct(r.RandomReadShare), r.PerRankRandomMean, pct(r.RandomVolumeShare))
	default:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "Non-contiguous accesses are rare (%s of operations); the access pattern is effectively sequential.", pct(r.NonContigShare))
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- shared-file ---

func planSharedFile(env *analysis.Env) (plan, error) {
	r, err := analysis.SharedFile(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Reconstructed per-file rank sets from DXT.csv: %d file(s) are accessed by more than one rank; the busiest (%s) is accessed by %d ranks.",
			r.SharedFiles, r.BusiestFile, r.MaxRanks),
		fmt.Sprintf("Mapped every access to %d-byte stripe units: the job touches %d stripes, of which %d (%s) are written by more than one rank.",
			r.StripeSize, r.StripesTouched, r.ConflictStripes, pct(r.ConflictShare)),
		fmt.Sprintf("Checked temporal overlap on contended stripes: %d write-involved accesses overlap in time with another rank's access to the same stripe; %s of all writes land on rank-shared stripes.",
			r.OverlapEvents, pct(r.WritesOnSharedShare)),
	}
	code := pySharedFile(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case r.SharedFiles == 0:
		verdict = issue.VerdictNotDetected
		concl.WriteString("Each file is accessed exclusively by a single rank (file-per-process pattern), so no shared-file stripe conflicts or lock overhead can occur.")
	case r.ConflictStripes == 0 && r.OverlapEvents == 0:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "A shared file is present (%s, accessed by %d ranks), but the per-rank regions are segmented: the analysis found no overlapping operations within the same stripe, hence no conflicts or lock overhead at the OSTs are expected despite the shared-file access — the significant risks associated with shared files do not materialize here.",
			r.BusiestFile, r.MaxRanks)
	case r.ConflictShare >= 0.1 || r.WritesOnSharedShare >= 0.1:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "Shared-file contention detected on %s (%d ranks): %s of touched stripes are written by multiple ranks and %s of write operations land on such stripes, with %d accesses showing temporal overlap — clear evidence of extent-lock conflicts ping-ponging between clients and contention at the OSTs. Segmenting ranks onto stripe-aligned regions or funneling writes through MPI-IO collective buffering would eliminate the conflicts.",
			r.BusiestFile, r.MaxRanks, pct(r.ConflictShare), pct(r.WritesOnSharedShare), r.OverlapEvents)
	default:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "The shared file %s (%d ranks) shows only marginal stripe sharing (%s of stripes, %s of writes); lock traffic at this level is unlikely to matter.",
			r.BusiestFile, r.MaxRanks, pct(r.ConflictShare), pct(r.WritesOnSharedShare))
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- load-imbalance ---

func planImbalance(env *analysis.Env) (plan, error) {
	r, err := analysis.Imbalance(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Aggregated per-rank I/O from DXT.csv: %d of %d ranks performed data I/O, moving %d bytes in total.",
			r.ActiveRanks, r.Ranks, r.TotalBytes),
	}
	if len(r.Loads) > 0 {
		steps = append(steps,
			fmt.Sprintf("Ranked the loads: rank %d leads with %s of all bytes (%s of operations); the smallest set of ranks covering 95%% of the bytes has %d member(s).",
				r.TopRank, pct(r.TopByteShare), pct(r.TopOpsShare), r.SubsetK),
			fmt.Sprintf("Computed the imbalance metric (max-avg)/max over per-rank bytes: %s.", pct(r.ImbalancePct)))
	}
	code := pyImbalance(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch r.Pattern {
	case "single-rank":
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "Severe load imbalance detected: rank %d performs %s of all I/O bytes and %s of operations — its summed I/O size dwarfs every other rank, yielding an imbalance of %s. The other %d ranks idle while rank %d writes; this is the classic master-does-the-I/O pathology (for netCDF/HDF5 outputs, check for fill-value writes to datasets that are later overwritten — disabling fill values removes the redundant sweep).",
			r.TopRank, pct(r.TopByteShare), pct(r.TopOpsShare), pct(r.ImbalancePct), r.Ranks-1, r.TopRank)
	case "subset":
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "A subset of %d out of %d ranks performs significantly more I/O than the rest, contributing approximately %s of the total bytes (imbalance metric %s). The regular structure of the subset suggests this behavior is an aggregator pattern (e.g. two-phase collective buffering) rather than an accidental bottleneck; it is worth investigating whether it is intentional — based on the application algorithm — or can be optimized for better load distribution, but it is not flagged as a defect.",
			r.SubsetK, r.Ranks, pct(r.SubsetShare), pct(r.ImbalancePct))
	default:
		verdict = issue.VerdictNotDetected
		if len(r.Loads) == 0 {
			concl.WriteString("No data I/O recorded; load imbalance does not apply.")
		} else {
			fmt.Fprintf(&concl, "I/O load is evenly distributed: the heaviest rank carries %s of the bytes against a fair share of %s; no imbalance issue.",
				pct(r.TopByteShare), pct(1/float64(maxInt(r.ActiveRanks, 1))))
		}
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- metadata ---

func planMetadata(env *analysis.Env) (plan, error) {
	r, err := analysis.Metadata(env)
	if err != nil {
		return plan{
			Steps:      []string{"Looked for the POSIX module: the trace records no POSIX activity, so open/stat/seek counters are absent."},
			Code:       "import os\nprint(os.path.exists(\"POSIX.csv\"))  # -> False",
			Conclusion: "The trace contains no POSIX-level metadata activity; the metadata servers are not stressed by this run.",
			Verdict:    issue.VerdictNotDetected,
		}, nil
	}
	steps := []string{
		fmt.Sprintf("Summed metadata counters: %d opens, %d stats, %d seeks, %d fsyncs — %d metadata operations against %d data operations (ratio %.2f).",
			r.Opens, r.Stats, r.Seeks, r.Fsyncs, r.MetaOps, r.DataOps, r.Ratio),
		fmt.Sprintf("Compared time: %.4f s in metadata versus %.4f s total I/O time (%s).",
			r.MetaTime, r.IOTime, pct(r.TimeShare)),
		fmt.Sprintf("Counted distinct files: %d.", r.DistinctFiles),
	}
	code := pyMetadata(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case r.Ratio >= 0.5 || r.TimeShare >= 0.3:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "The application exhibits high metadata I/O behavior: %d metadata operations against %d data operations (%.2f metadata ops per data op) across %d distinct files, with metadata accounting for %s of I/O time. Opening, stat-ing and closing files around tiny accesses places unnecessary load on the metadata servers and could create a bottleneck in the system for this job and its neighbors; keeping handles open across iterations or packing small objects into shared containers would relieve the MDS.",
			r.MetaOps, r.DataOps, r.Ratio, r.DistinctFiles, pct(r.TimeShare))
	case r.Ratio >= 0.1:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "Metadata activity is noticeable (%d operations, ratio %.2f) but amortized over the data phase (%s of I/O time); not currently a bottleneck.",
			r.MetaOps, r.Ratio, pct(r.TimeShare))
	default:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "Metadata load is negligible: %d metadata operations against %d data operations; the metadata servers are not stressed by this job.",
			r.MetaOps, r.DataOps)
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- interface-usage ---

func planInterface(env *analysis.Env) (plan, error) {
	r, err := analysis.Interface(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Inventoried the modules: the job (nprocs=%d) used %s; POSIX carries %d data operations, MPI-IO %d, STDIO %d.",
			r.NProcs, r.Describe(), r.PosixDataOps, r.MpiioDataOps, r.StdioDataOps),
		fmt.Sprintf("Checked parallelism of the data path: multiple ranks perform data I/O = %v; %d file(s) are shared between ranks.",
			r.MultiRankData, r.SharedFiles),
	}
	code := pyInterface(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case !r.MultiRankData:
		verdict = issue.VerdictNotDetected
		concl.WriteString("The job's data I/O is effectively serial (single rank); interface choice is not a scaling concern here.")
	case r.UsesMPIIO:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "The application already routes its parallel I/O through MPI-IO (%d MPI-IO data operations); the interface stack is appropriate for a %d-rank job.",
			r.MpiioDataOps, r.NProcs)
	default:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "The application is only using POSIX I/O calls and is not employing MPI-IO, despite the presence of multiple ranks performing I/O (nprocs=%d, %d POSIX data operations",
			r.NProcs, r.PosixDataOps)
		if r.SharedFiles > 0 {
			fmt.Fprintf(&concl, ", including %d shared file(s)", r.SharedFiles)
		}
		concl.WriteString("). The access pattern suggests the application could benefit from MPI-IO's collective and non-blocking operations — collective buffering would aggregate the per-rank requests into few large, aligned transfers and unlock hint-based tuning.")
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- collective-io ---

func planCollective(env *analysis.Env) (plan, error) {
	r, err := analysis.Collective(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Split MPI-IO activity: %d collective vs %d independent data operations (collective share %s); opens: %d collective, %d independent.",
			r.CollOps, r.IndepOps, pct(r.CollShare), r.CollOpens, r.IndepOpens),
		fmt.Sprintf("Checked the size histogram of MPI-IO accesses: %d operations (%s) fall below the stripe unit.",
			r.SmallIndep, pct(r.SmallIndepShare)),
	}
	code := pyCollective(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case !r.HasMPIIO:
		verdict = issue.VerdictNotDetected
		concl.WriteString("The application does not use the MPI-IO module, so the collective/independent split does not apply (see the interface-usage analysis for whether MPI-IO should be adopted).")
	case r.IndepOps > 0 && r.CollShare < 0.5 && r.SmallIndepShare > 0.5:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "MPI-IO is present but degraded: the file is opened collectively (%d collective opens), yet %d of the data operations are independent and %s of them are below the stripe unit — the collective layer is emitting individual small accesses instead of two-phase aggregated transfers. This signature matches a library defect (e.g. the known HDF5 collective-metadata bug) or a disabled collective-buffering path; upgrading the library or forcing collective mode (romio_cb_write=enable) should restore aggregation.",
			r.CollOpens, r.IndepOps, pct(r.SmallIndepShare))
	case r.IndepOps > 0 && r.CollShare < 0.5:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "MPI-IO operations are predominantly independent (%d vs %d collective), but the accesses are large (only %s below the stripe unit), so independence costs little here; collectives remain an option if contention appears.",
			r.IndepOps, r.CollOps, pct(r.SmallIndepShare))
	default:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "Collective I/O is used effectively: %s of MPI-IO data operations are collective, letting ROMIO aggregate and align transfers.",
			pct(r.CollShare))
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

// --- rank-time-imbalance ---

func planTimeImbalance(env *analysis.Env) (plan, error) {
	r, err := analysis.TimeImbalance(env)
	if err != nil {
		return plan{}, err
	}
	steps := []string{
		fmt.Sprintf("Summed per-rank busy time from DXT.csv intervals across %d active ranks.", r.ActiveRanks),
		fmt.Sprintf("Slowest rank: %d with %.4f s versus a mean of %.4f s (ratio %.1fx); Darshan's reduced time variance counter reads %.6f.",
			r.SlowestRank, r.SlowestTime, r.MeanTime, r.Ratio, r.VarianceTime),
	}
	code := pyTime(r)

	var verdict issue.Verdict
	var concl strings.Builder
	switch {
	case r.ActiveRanks <= 1:
		verdict = issue.VerdictNotDetected
		concl.WriteString("Only one rank performs I/O; rank-time imbalance does not apply.")
	case r.Ratio >= 10:
		verdict = issue.VerdictDetected
		fmt.Fprintf(&concl, "Rank %d spends %.4f s in I/O — %.0f times the per-rank mean of %.4f s. Every synchronization that follows the I/O phase stalls on this straggler. Cross-reference the load-imbalance analysis: if the same rank also moves most bytes the cause is workload skew; if not, it is contention (lock conflicts or OST queueing).",
			r.SlowestRank, r.SlowestTime, r.Ratio, r.MeanTime)
	case r.Ratio >= 3:
		verdict = issue.VerdictMitigated
		fmt.Fprintf(&concl, "Rank I/O times diverge moderately (slowest rank %d at %.1fx the mean); worth watching but not yet the dominant cost.",
			r.SlowestRank, r.Ratio)
	default:
		verdict = issue.VerdictNotDetected
		fmt.Fprintf(&concl, "Per-rank I/O times are uniform (slowest/mean = %.2f); no straggler effect.", r.Ratio)
	}
	return plan{Steps: steps, Code: code, Conclusion: concl.String(), Verdict: verdict}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
