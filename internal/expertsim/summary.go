package expertsim

import (
	"fmt"
	"regexp"
	"strings"

	"ion/internal/issue"
	"ion/internal/prompt"
)

// Recommendations holds the expert's actionable advice per issue, used
// in summaries and interactive answers.
var Recommendations = map[issue.ID]string{
	issue.SmallIO:       "Batch small requests into stripe-sized transfers, or route them through MPI-IO collective buffering / HDF5 chunk caching so the client aggregates before the wire.",
	issue.MisalignedIO:  "Align record sizes and offsets to the Lustre stripe unit (e.g. H5Pset_alignment, MPI-IO striping hints, or padding records to the stripe size).",
	issue.RandomAccess:  "Restructure toward contiguous per-rank regions, sort/merge accesses before issuing them, or use collective I/O so the library converts scattered requests into contiguous transfers.",
	issue.SharedFile:    "Segment ranks onto stripe-aligned regions, raise the file's stripe count to spread load, or funnel writes through MPI-IO collective buffering to avoid extent-lock ping-pong.",
	issue.LoadImbalance: "Distribute the I/O across ranks (e.g. disable netCDF/HDF5 fill values, avoid master-writes-all patterns) or use collective I/O with explicit aggregators.",
	issue.Metadata:      "Keep file handles open across iterations, batch stat calls, and pack many small objects into shared container files to take load off the metadata server.",
	issue.Interface:     "Adopt MPI-IO (directly or through HDF5/PnetCDF) so multi-rank access benefits from collective buffering, data sieving, and tunable hints.",
	issue.CollectiveIO:  "Force collective mode (e.g. romio_cb_write=enable) or upgrade the I/O library so collective calls actually aggregate instead of degrading to independent accesses.",
	issue.TimeImbalance: "Identify the straggler's cause (contention vs workload skew) and rebalance or stagger the offending ranks' I/O.",
}

// diagBlock is one parsed per-issue conclusion in a summary prompt.
type diagBlock struct {
	ID      issue.ID
	Title   string
	Body    string
	Verdict issue.Verdict
}

var blockRe = regexp.MustCompile(`(?m)^### (.+) \[([a-z-]+)\]\s*$`)
var verdictRe = regexp.MustCompile(`(?m)^` + prompt.VerdictPrefix + `\s*(detected|mitigated|not-detected)\s*$`)

// parseBlocks extracts the per-issue blocks between the "Diagnoses to
// summarize" header and the task section.
func parseBlocks(content string) []diagBlock {
	start := strings.Index(content, "## Diagnoses to summarize")
	if start < 0 {
		return nil
	}
	region := content[start:]
	if end := strings.Index(region, "## Task"); end >= 0 {
		region = region[:end]
	}
	locs := blockRe.FindAllStringSubmatchIndex(region, -1)
	var blocks []diagBlock
	for i, loc := range locs {
		title := region[loc[2]:loc[3]]
		id := issue.ID(region[loc[4]:loc[5]])
		bodyStart := loc[1]
		bodyEnd := len(region)
		if i+1 < len(locs) {
			bodyEnd = locs[i+1][0]
		}
		body := strings.TrimSpace(region[bodyStart:bodyEnd])
		verdict := issue.VerdictNotDetected
		if m := verdictRe.FindStringSubmatch(body); m != nil {
			verdict = issue.Verdict(m[1])
			body = strings.TrimSpace(verdictRe.ReplaceAllString(body, ""))
		}
		blocks = append(blocks, diagBlock{ID: id, Title: title, Body: body, Verdict: verdict})
	}
	return blocks
}

// summarize composes the global diagnosis summary from the per-issue
// conclusions embedded in the prompt.
func summarize(content string) (string, error) {
	blocks := parseBlocks(content)
	if len(blocks) == 0 {
		return "", fmt.Errorf("expertsim: summary prompt contains no diagnosis blocks")
	}
	var detected, mitigated []diagBlock
	for _, b := range blocks {
		switch b.Verdict {
		case issue.VerdictDetected:
			detected = append(detected, b)
		case issue.VerdictMitigated:
			mitigated = append(mitigated, b)
		}
	}

	var s strings.Builder
	s.WriteString("## Global I/O Diagnosis Summary\n\n")
	switch {
	case len(detected) == 0 && len(mitigated) == 0:
		s.WriteString("Overall, this run's I/O is healthy: none of the analyzed issue classes shows a harmful signature.\n")
	case len(detected) == 0:
		s.WriteString("Overall, this run's I/O is in good shape: no issue requires action, though a few patterns are worth knowing about (see below).\n")
	case len(detected) == 1:
		fmt.Fprintf(&s, "Overall, this run's I/O suffers from one significant issue: %s.\n", strings.ToLower(detected[0].Title))
	default:
		var names []string
		for _, b := range detected {
			names = append(names, strings.ToLower(b.Title))
		}
		fmt.Fprintf(&s, "Overall, this run's I/O suffers from %d significant issues: %s.\n",
			len(detected), strings.Join(names, "; "))
	}

	if len(detected) > 0 {
		s.WriteString("\n### Issues requiring attention\n\n")
		for i, b := range detected {
			fmt.Fprintf(&s, "%d. **%s** — %s\n", i+1, b.Title, firstSentences(b.Body, 2))
		}
	}
	if len(mitigated) > 0 {
		s.WriteString("\n### Patterns present but benign\n\n")
		for _, b := range mitigated {
			fmt.Fprintf(&s, "- **%s** — %s\n", b.Title, firstSentences(b.Body, 1))
		}
	}
	if len(detected) > 0 {
		s.WriteString("\n### Recommended next steps\n\n")
		for i, b := range detected {
			if rec, ok := Recommendations[b.ID]; ok {
				fmt.Fprintf(&s, "%d. %s\n", i+1, rec)
			}
		}
	}
	return s.String(), nil
}

// firstSentences returns the first n sentences of a text.
func firstSentences(text string, n int) string {
	text = strings.Join(strings.Fields(text), " ")
	count := 0
	for i := 0; i < len(text); i++ {
		if text[i] == '.' || text[i] == ';' {
			// Skip decimal points and common abbreviations.
			if text[i] == '.' && i+1 < len(text) && text[i+1] != ' ' {
				continue
			}
			count++
			if count >= n {
				return text[:i+1]
			}
		}
	}
	return text
}
