// Package expertsim implements a deterministic, offline simulation of
// the I/O-expert language model ION queries (the paper used GPT-4 via
// the OpenAI Assistants API). It consumes the exact prompts the ION
// Analyzer constructs, plans an issue-specific analysis program,
// executes it against the extracted CSV files (the Assistants
// code-interpreter analogue, backed by internal/analysis), and responds
// in the instructed output format: chain-of-thought steps, the analysis
// code, and a grounded conclusion with a verdict line.
//
// Substituting this model for GPT-4 keeps the entire ION pipeline —
// prompt construction, parallel fan-out, completion parsing, global
// summarization, and the interactive interface — identical and fully
// reproducible. A real endpoint can be swapped in through llm.OpenAI
// without touching the pipeline.
package expertsim

import (
	"context"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"ion/internal/analysis"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/prompt"
)

// ModelName is reported in completions.
const ModelName = "ion-expertsim-1"

// Client is the simulated expert model. It is safe for concurrent use.
type Client struct {
	// LoadDir loads extracted CSVs; tests may override it.
	LoadDir func(dir string) (*extractor.Output, error)

	mu   sync.Mutex
	envs map[string]*analysis.Env
}

// New returns a simulated expert client.
func New() *Client {
	return &Client{LoadDir: extractor.LoadDir, envs: map[string]*analysis.Env{}}
}

// Name implements llm.Client.
func (c *Client) Name() string { return "expertsim" }

// Complete implements llm.Client by dispatching on the request kind.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	if err := ctx.Err(); err != nil {
		return llm.Completion{}, fmt.Errorf("expertsim: %w", err)
	}
	content := userContent(req)
	kind := req.Metadata[prompt.MetaKind]
	if kind == "" {
		kind = classify(content)
	}
	var (
		out string
		err error
	)
	switch kind {
	case prompt.KindDiagnosis:
		out, err = c.diagnose(req, content)
	case prompt.KindSummary:
		out, err = summarize(content)
	case prompt.KindChat:
		out, err = chat(content)
	default:
		return llm.Completion{}, fmt.Errorf("expertsim: cannot classify request (kind %q)", kind)
	}
	if err != nil {
		return llm.Completion{}, err
	}
	return llm.Completion{
		Content: out,
		Model:   ModelName,
		Usage: llm.Usage{
			PromptTokens:     llm.PromptTokens(req),
			CompletionTokens: llm.EstimateTokens(out),
		},
	}, nil
}

// userContent concatenates the user-role messages.
func userContent(req llm.Request) string {
	var b strings.Builder
	for _, m := range req.Messages {
		if m.Role == llm.RoleUser {
			b.WriteString(m.Content)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// classify infers the request kind from prompt structure when metadata
// is absent (e.g. replayed or hand-written requests).
func classify(content string) string {
	switch {
	case strings.Contains(content, "# Diagnosis request"):
		return prompt.KindDiagnosis
	case strings.Contains(content, "# Summarization request"):
		return prompt.KindSummary
	case strings.Contains(content, "# Interactive question"):
		return prompt.KindChat
	}
	return ""
}

var issueIDRe = regexp.MustCompile(`(?m)^Issue-ID:\s*([a-z-]+)\s*$`)

// diagnose runs the per-issue analysis plan.
func (c *Client) diagnose(req llm.Request, content string) (string, error) {
	id := issue.ID(req.Metadata[prompt.MetaIssue])
	if id == "" {
		if m := issueIDRe.FindStringSubmatch(content); m != nil {
			id = issue.ID(m[1])
		}
	}
	if !issue.Valid(id) {
		return "", fmt.Errorf("expertsim: diagnosis prompt does not identify a known issue (got %q)", id)
	}
	env, err := c.envFor(req, content)
	if err != nil {
		return "", err
	}
	p, err := planFor(id, env)
	if err != nil {
		return "", fmt.Errorf("expertsim: planning %s: %w", id, err)
	}
	return p.render(), nil
}

// envFor resolves and caches the analysis environment for the request's
// CSV directory.
func (c *Client) envFor(req llm.Request, content string) (*analysis.Env, error) {
	dir := req.Metadata[prompt.MetaCSVDir]
	if dir == "" && len(req.Files) > 0 {
		dir = filepath.Dir(req.Files[0])
	}
	if dir == "" {
		return nil, fmt.Errorf("expertsim: request attaches no CSV files and names no CSV directory")
	}
	hyper := parseHyper(content)
	key := dir + "|" + fmt.Sprint(hyper)
	c.mu.Lock()
	defer c.mu.Unlock()
	if env, ok := c.envs[key]; ok {
		return env, nil
	}
	out, err := c.LoadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("expertsim: loading trace CSVs: %w", err)
	}
	env := analysis.NewEnv(out, hyper)
	// Pre-parse DXT under the lock so the lazily cached event slice is
	// written once, keeping the env safe for the parallel fan-out.
	_, _ = env.Events()
	c.envs[key] = env
	return env, nil
}

var hyperRe = regexp.MustCompile(`(?m)^- (lustre_stripe_size|rpc_size|mem_alignment) = (\d+) bytes$`)

// parseHyper reads the system hyper-parameters from the prompt; the
// prompt is the interface, so the simulated expert honors exactly what
// it was told.
func parseHyper(content string) knowledge.Hyperparams {
	h := knowledge.DefaultHyperparams()
	for _, m := range hyperRe.FindAllStringSubmatch(content, -1) {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil || v <= 0 {
			continue
		}
		switch m[1] {
		case "lustre_stripe_size":
			h.StripeSize = v
		case "rpc_size":
			h.RPCSize = v
		case "mem_alignment":
			h.MemAlignment = v
		}
	}
	return h
}

// plan is one completed diagnosis: the three output sections.
type plan struct {
	Steps      []string
	Code       string
	Conclusion string
	Verdict    issue.Verdict
}

// render produces the completion text in the instructed format.
func (p plan) render() string {
	var b strings.Builder
	b.WriteString(prompt.SectionSteps + "\n")
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%d. %s\n", i+1, s)
	}
	b.WriteString("\n" + prompt.SectionCode + "\n")
	b.WriteString("```python\n")
	b.WriteString(strings.TrimSpace(p.Code))
	b.WriteString("\n```\n")
	b.WriteString("\n" + prompt.SectionConclusion + "\n")
	b.WriteString(strings.TrimSpace(p.Conclusion))
	fmt.Fprintf(&b, "\n%s %s\n", prompt.VerdictPrefix, p.Verdict)
	return b.String()
}

// planFor dispatches to the per-issue planner.
func planFor(id issue.ID, env *analysis.Env) (plan, error) {
	switch id {
	case issue.SmallIO:
		return planSmallIO(env)
	case issue.MisalignedIO:
		return planAlignment(env)
	case issue.RandomAccess:
		return planRandom(env)
	case issue.SharedFile:
		return planSharedFile(env)
	case issue.LoadImbalance:
		return planImbalance(env)
	case issue.Metadata:
		return planMetadata(env)
	case issue.Interface:
		return planInterface(env)
	case issue.CollectiveIO:
		return planCollective(env)
	case issue.TimeImbalance:
		return planTimeImbalance(env)
	}
	return plan{}, fmt.Errorf("expertsim: no planner for issue %q", id)
}
