package expertsim

import (
	"fmt"
	"strings"

	"ion/internal/analysis"
)

// The code listings below are what the simulated expert "executed":
// faithful pandas equivalents of the Go analyses in internal/analysis.
// Emitting them keeps ION's traceability property — the user can read
// exactly how each number in the conclusion was computed — matching the
// paper's Assistants-API code-interpreter output.
//
// Templates use @N@ placeholders instead of fmt verbs because the
// Python bodies are full of literal '%' characters (f-string percent
// formats) that would fight printf-style escaping.

// sub replaces @0@, @1@, ... with the stringified arguments.
func sub(template string, args ...interface{}) string {
	out := template
	for i, a := range args {
		out = strings.ReplaceAll(out, fmt.Sprintf("@%d@", i), fmt.Sprint(a))
	}
	return out
}

func pySmallIO(r analysis.SmallIOReport) string {
	return sub(`import pandas as pd

dxt = pd.read_csv("DXT.csv")
STRIPE, RPC = @0@, @1@

total = len(dxt)
tiny  = (dxt.length < STRIPE).sum()
small = (dxt.length < RPC).sum()
small_bytes = dxt.loc[dxt.length < RPC, "length"].sum()

# aggregation potential: small ops consecutive within each
# (file, rank, op) stream
dxt = dxt.sort_values(["file_name", "rank", "op", "start"])
grp = dxt.groupby(["file_name", "rank", "op"])
prev_end = grp["offset"].shift() + grp["length"].shift()
consec_small = ((dxt.offset == prev_end) & (dxt.length < RPC)).sum()

print(f"tiny {tiny}/{total} = {tiny/total:.2%}")
print(f"small {small}/{total} = {small/total:.2%}")
print(f"small-op volume share = {small_bytes/dxt.length.sum():.2%}")
print(f"aggregatable (consecutive) small ops = {consec_small}")
# executed -> tiny=@2@ small=@3@ consecutive_small=@4@`,
		r.StripeSize, r.RPCSize, r.TinyOps, r.SmallOps, r.ConsecSmall)
}

func pyAlignment(r analysis.AlignmentReport) string {
	return sub(`import pandas as pd

posix = pd.read_csv("POSIX.csv")
ops = (posix.POSIX_READS + posix.POSIX_WRITES).sum()
mis = posix.POSIX_FILE_NOT_ALIGNED.sum()
mem = posix.POSIX_MEM_NOT_ALIGNED.sum()
align = posix.POSIX_FILE_ALIGNMENT.max()
worst = posix.loc[posix.POSIX_FILE_NOT_ALIGNED.idxmax(), "file_name"]

print(f"file misalignment: {mis}/{ops} = {mis/ops:.2%} (boundary {align} B)")
print(f"memory misalignment: {mem}/{ops} = {mem/ops:.2%}")
print("worst file:", worst)
# executed -> mis=@0@ ops=@1@ align=@2@`, r.FileMis, r.TotalOps, r.FileAlignment)
}

func pyPattern(r analysis.PatternReport) string {
	return sub(`import pandas as pd

dxt = pd.read_csv("DXT.csv").sort_values(["file_name", "rank", "op", "start"])
grp = dxt.groupby(["file_name", "rank", "op"])
prev_end   = grp["offset"].shift() + grp["length"].shift()
prev_start = grp["offset"].shift()
prev_len   = grp["length"].shift()

classified = prev_end.notna()
consec   = (dxt.offset == prev_end) & classified
repeat   = (dxt.offset == prev_start) & (dxt.length == prev_len) & classified & ~consec
forward  = (dxt.offset > prev_end) & classified
backward = (dxt.offset < prev_end) & classified & ~repeat

noncontig = forward | backward
print(f"consecutive {consec.sum()}, repeats {repeat.sum()}, "
      f"forward {forward.sum()}, backward {backward.sum()}")
print(f"non-contiguous share = {noncontig.sum()/classified.sum():.2%}")
print(f"non-contiguous volume = "
      f"{dxt.loc[noncontig,'length'].sum()/dxt.length.sum():.2%}")
# executed -> consec=@0@ forward=@1@ backward=@2@ repeats=@3@`,
		r.Consecutive, r.ForwardJumps, r.BackwardJumps, r.Repeats)
}

func pySharedFile(r analysis.SharedFileReport) string {
	return sub(`import pandas as pd

dxt = pd.read_csv("DXT.csv")
STRIPE = @0@

ranks_per_file = dxt.groupby("file_name")["rank"].nunique()
print("shared files:", (ranks_per_file > 1).sum(),
      "max ranks:", ranks_per_file.max())

dxt["first_stripe"] = dxt.offset // STRIPE
dxt["last_stripe"]  = (dxt.offset + dxt.length - 1) // STRIPE
w = dxt[dxt.op == "write"]
per_stripe = {}
for _, e in w.iterrows():
    for s in range(e.first_stripe, e.last_stripe + 1):
        per_stripe.setdefault((e.file_name, s), set()).add(e["rank"])
conflicts = {k for k, v in per_stripe.items() if len(v) > 1}
print("conflict stripes:", len(conflicts))
# (temporal-overlap pass over conflict stripes follows the same loop)
# executed -> shared=@1@ conflict_stripes=@2@ overlap_events=@3@`,
		r.StripeSize, r.SharedFiles, r.ConflictStripes, r.OverlapEvents)
}

func pyImbalance(r analysis.ImbalanceReport) string {
	return sub(`import pandas as pd

dxt = pd.read_csv("DXT.csv")
nprocs = pd.read_csv("JOB.csv").nprocs[0]
per_rank = dxt.groupby("rank").agg(bytes=("length", "sum"),
                                   ops=("length", "count"))
per_rank = per_rank.sort_values("bytes", ascending=False)
total = per_rank.bytes.sum()

top = per_rank.iloc[0]
print(f"top rank {per_rank.index[0]}: {top.bytes/total:.2%} of bytes")
cum = per_rank.bytes.cumsum()
k95 = int((cum < 0.95 * total).sum()) + 1
print(f"ranks covering 95% of bytes: {k95}")
imb = (per_rank.bytes.max() - total/nprocs) / per_rank.bytes.max()
print(f"imbalance (max-avg)/max = {imb:.2%}")
# executed -> top_rank=@0@ top_share=@1@ subset_k=@2@`,
		r.TopRank, analysis.Pct(r.TopByteShare), r.SubsetK)
}

func pyMetadata(r analysis.MetadataReport) string {
	return sub(`import pandas as pd

posix = pd.read_csv("POSIX.csv")
meta = (posix.POSIX_OPENS + posix.POSIX_STATS
        + posix.POSIX_SEEKS + posix.POSIX_FSYNCS).sum()
data = (posix.POSIX_READS + posix.POSIX_WRITES).sum()
meta_t = posix.POSIX_F_META_TIME.sum()
io_t = meta_t + posix.POSIX_F_READ_TIME.sum() + posix.POSIX_F_WRITE_TIME.sum()

print(f"meta ops {meta} vs data ops {data} (ratio {meta/data:.2f})")
print(f"meta time share = {meta_t/io_t:.2%}")
print("distinct files:", posix.file_name.nunique())
# executed -> meta=@0@ data=@1@ files=@2@`, r.MetaOps, r.DataOps, r.DistinctFiles)
}

func pyInterface(r analysis.InterfaceReport) string {
	return sub(`import pandas as pd, os

nprocs = pd.read_csv("JOB.csv").nprocs[0]
posix_ops = 0
if os.path.exists("POSIX.csv"):
    posix = pd.read_csv("POSIX.csv")
    posix_ops = (posix.POSIX_READS + posix.POSIX_WRITES).sum()
mpiio_ops = 0
if os.path.exists("MPIIO.csv"):
    m = pd.read_csv("MPIIO.csv")
    mpiio_ops = (m.MPIIO_INDEP_READS + m.MPIIO_INDEP_WRITES
                 + m.MPIIO_COLL_READS + m.MPIIO_COLL_WRITES).sum()

print(f"nprocs={nprocs} posix_data_ops={posix_ops} mpiio_data_ops={mpiio_ops}")
# executed -> nprocs=@0@ posix=@1@ mpiio=@2@`, r.NProcs, r.PosixDataOps, r.MpiioDataOps)
}

func pyCollective(r analysis.CollectiveReport) string {
	return sub(`import pandas as pd

m = pd.read_csv("MPIIO.csv")
coll  = (m.MPIIO_COLL_READS + m.MPIIO_COLL_WRITES).sum()
indep = (m.MPIIO_INDEP_READS + m.MPIIO_INDEP_WRITES).sum()
small_bins = [c for c in m.columns
              if "SIZE_" in c and c.endswith(("_0_100", "_100_1K",
                                              "_1K_10K", "_10K_100K",
                                              "_100K_1M"))]
small = m[small_bins].to_numpy().sum()

print(f"collective {coll} vs independent {indep}")
print(f"sub-stripe MPI-IO ops: {small}")
print("collective opens:", m.MPIIO_COLL_OPENS.sum())
# executed -> coll=@0@ indep=@1@ small=@2@`, r.CollOps, r.IndepOps, r.SmallIndep)
}

func pyTime(r analysis.TimeReport) string {
	return sub(`import pandas as pd

dxt = pd.read_csv("DXT.csv")
busy = (dxt["end"] - dxt["start"]).groupby(dxt["rank"]).sum()
print(f"slowest rank {busy.idxmax()}: {busy.max():.4f}s "
      f"(mean {busy.mean():.4f}s, ratio {busy.max()/busy.mean():.1f}x)")
# executed -> slowest_rank=@0@ ratio=@1@`, r.SlowestRank, fmt.Sprintf("%.1f", r.Ratio))
}
