package expertsim

import (
	"context"
	"strings"
	"testing"

	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/prompt"
	"ion/internal/testutil"
	"ion/internal/workloads"
)

// diagnose runs the full prompt → expertsim → parse loop for one issue
// on one workload.
func diagnose(t *testing.T, workload string, id issue.ID) *ion.IssueDiagnosis {
	t.Helper()
	out, _, err := testutil.Extracted(workload)
	if err != nil {
		t.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	req, err := prompt.NewBuilder(kb).Diagnosis(id, out)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := New().Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("%s/%s: %v", workload, id, err)
	}
	d, err := ion.ParseCompletion(id, comp.Content)
	if err != nil {
		t.Fatalf("%s/%s: completion unparsable: %v\n---\n%s", workload, id, err, comp.Content)
	}
	return d
}

// TestVerdictsMatchGroundTruth is the core regression test of the
// reproduction: across every evaluation workload, every ground-truth
// issue must get its expected verdict and no unlisted issue may be
// "detected".
func TestVerdictsMatchGroundTruth(t *testing.T) {
	for _, w := range append(workloads.All(), workloads.Extras()...) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want := map[issue.ID]issue.Verdict{}
			for _, e := range w.Truth {
				want[e.Issue] = e.Want
			}
			for _, id := range issue.All {
				d := diagnose(t, w.Name, id)
				if exp, listed := want[id]; listed {
					if d.Verdict != exp {
						t.Errorf("%s: verdict %s, want %s\nconclusion: %s", id, d.Verdict, exp, d.Conclusion)
					}
				} else if d.Verdict == issue.VerdictDetected {
					t.Errorf("%s: false positive (detected)\nconclusion: %s", id, d.Conclusion)
				}
			}
		})
	}
}

func TestCompletionFormat(t *testing.T) {
	d := diagnose(t, "ior-hard", issue.SmallIO)
	if len(d.Steps) < 3 {
		t.Errorf("expected >=3 reasoning steps, got %d", len(d.Steps))
	}
	for i, s := range d.Steps {
		if !strings.ContainsAny(s, "0123456789") {
			t.Errorf("step %d carries no computed number: %q", i, s)
		}
	}
	if !strings.Contains(d.Code, "pd.read_csv") {
		t.Error("code listing missing pandas analysis")
	}
	if !strings.Contains(d.Conclusion, "%") {
		t.Error("conclusion carries no quantification")
	}
}

func TestPaperShapeNumbers(t *testing.T) {
	// Paper row "IOR-Easy-2KB": ~99.8% misalignment; ops small but
	// sequential and aggregatable; shared file without stripe overlap.
	mis := diagnose(t, "ior-easy-2k-shared", issue.MisalignedIO)
	if !strings.Contains(mis.Conclusion, "99.8") {
		t.Errorf("2KB misalignment should be ~99.8%%: %s", mis.Conclusion)
	}
	shared := diagnose(t, "ior-easy-2k-shared", issue.SharedFile)
	if !strings.Contains(shared.Conclusion, "no overlapping operations within the same stripe") {
		t.Errorf("shared-file conclusion should rule out stripe overlap: %s", shared.Conclusion)
	}
	// Paper row "IOR-Easy-1MB": 0.0% misalignment over 8192 ops.
	mis1m := diagnose(t, "ior-easy-1m-shared", issue.MisalignedIO)
	if !strings.Contains(mis1m.Conclusion, "8192") {
		t.Errorf("1MB misalignment conclusion should count 8192 ops: %s", mis1m.Conclusion)
	}
	if !strings.Contains(mis1m.Conclusion, "0.00%") {
		t.Errorf("1MB misalignment should be 0.00%%: %s", mis1m.Conclusion)
	}
	// Paper: interface insight names POSIX-only usage with multiple ranks.
	iface := diagnose(t, "ior-easy-1m-fpp", issue.Interface)
	if !strings.Contains(iface.Conclusion, "only using POSIX") {
		t.Errorf("interface conclusion: %s", iface.Conclusion)
	}
	// Paper: E2E baseline names rank 0 as the overloaded rank.
	imb := diagnose(t, "e2e-baseline", issue.LoadImbalance)
	if !strings.Contains(imb.Conclusion, "rank 0") {
		t.Errorf("imbalance conclusion must name rank 0: %s", imb.Conclusion)
	}
	// Paper: E2E optimized attributes the skew to a subset and calls it
	// possibly intentional.
	sub := diagnose(t, "e2e-optimized", issue.LoadImbalance)
	if !strings.Contains(sub.Conclusion, "subset") || !strings.Contains(sub.Conclusion, "1024") {
		t.Errorf("subset conclusion: %s", sub.Conclusion)
	}
	if !strings.Contains(sub.Conclusion, "intentional") && !strings.Contains(sub.Conclusion, "aggregator") {
		t.Errorf("subset conclusion should flag possible intent: %s", sub.Conclusion)
	}
}

func TestSummary(t *testing.T) {
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	b := prompt.NewBuilder(kb)
	client := New()
	conclusions := map[issue.ID]string{}
	for _, id := range []issue.ID{issue.SmallIO, issue.SharedFile, issue.Metadata} {
		req, err := b.Diagnosis(id, out)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := client.Complete(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ion.ParseCompletion(id, comp.Content)
		if err != nil {
			t.Fatal(err)
		}
		conclusions[id] = d.Conclusion + "\n" + prompt.VerdictPrefix + " " + string(d.Verdict)
	}
	sreq := b.Summary(conclusions)
	comp, err := client.Complete(context.Background(), sreq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.Content, "Global I/O Diagnosis Summary") {
		t.Errorf("summary header missing: %s", comp.Content)
	}
	if !strings.Contains(comp.Content, "Issues requiring attention") {
		t.Errorf("summary lacks detected-issue section: %s", comp.Content)
	}
	if !strings.Contains(comp.Content, "Recommended next steps") {
		t.Errorf("summary lacks recommendations: %s", comp.Content)
	}
}

func TestSummaryEmptyPromptFails(t *testing.T) {
	req := llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "# Summarization request\n\nnothing here"}},
		Metadata: map[string]string{prompt.MetaKind: prompt.KindSummary},
	}
	if _, err := New().Complete(context.Background(), req); err == nil {
		t.Error("summary without diagnosis blocks should fail")
	}
}

func TestChat(t *testing.T) {
	contextText := `[small-io] Small I/O Operations
VERDICT: detected
The application exhibits a repetitive pattern of small requests: 99.00% of operations are below the stripe unit.
  step 1: Computed the access-size distribution.

[shared-file] Shared-File Access Contention
VERDICT: mitigated
No overlapping operations within the same stripe.
`
	b := prompt.NewBuilder(knowledge.NewBase(knowledge.DefaultHyperparams()))
	req := b.Chat(contextText, nil, "Why are the small writes a problem, and how do I fix them?")
	comp, err := New().Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp.Content, "Small I/O") {
		t.Errorf("chat answer should route to the small-io section: %s", comp.Content)
	}
	if !strings.Contains(comp.Content, "remedy") && !strings.Contains(comp.Content, "Batch") {
		t.Errorf("fix-seeking question should include a recommendation: %s", comp.Content)
	}

	// Lock/contention questions route to shared-file.
	req2 := b.Chat(contextText, nil, "Did you see any lock contention on the stripes?")
	comp2, err := New().Complete(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(comp2.Content, "Shared-File") {
		t.Errorf("chat answer should route to shared-file: %s", comp2.Content)
	}
}

func TestChatErrors(t *testing.T) {
	c := New()
	_, err := c.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "# Interactive question\n\nno sections"}},
		Metadata: map[string]string{prompt.MetaKind: prompt.KindChat},
	})
	if err == nil {
		t.Error("malformed chat prompt accepted")
	}
}

func TestDiagnosisErrors(t *testing.T) {
	c := New()
	// Unknown issue.
	_, err := c.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "# Diagnosis request\n\nIssue-ID: bogus\n"}},
		Metadata: map[string]string{prompt.MetaKind: prompt.KindDiagnosis},
	})
	if err == nil {
		t.Error("unknown issue accepted")
	}
	// No CSV location.
	_, err = c.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "# Diagnosis request\n\nIssue-ID: small-io\n"}},
		Metadata: map[string]string{prompt.MetaKind: prompt.KindDiagnosis},
	})
	if err == nil {
		t.Error("request without CSVs accepted")
	}
	// Unclassifiable request.
	_, err = c.Complete(context.Background(), llm.Request{
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "hello"}},
	})
	if err == nil {
		t.Error("unclassifiable request accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]string{
		"# Diagnosis request: x":    prompt.KindDiagnosis,
		"# Summarization request":   prompt.KindSummary,
		"# Interactive question":    prompt.KindChat,
		"something else completely": "",
	}
	for content, want := range cases {
		if got := classify(content); got != want {
			t.Errorf("classify(%q) = %q, want %q", content, got, want)
		}
	}
}

func TestParseHyper(t *testing.T) {
	content := "## System hyper-parameters\n\n- lustre_stripe_size = 65536 bytes\n- rpc_size = 262144 bytes\n- mem_alignment = 16 bytes\n"
	h := parseHyper(content)
	if h.StripeSize != 65536 || h.RPCSize != 262144 || h.MemAlignment != 16 {
		t.Errorf("parseHyper = %+v", h)
	}
	// Defaults survive garbage.
	h2 := parseHyper("- lustre_stripe_size = -5 bytes\n")
	if h2.StripeSize != knowledge.DefaultHyperparams().StripeSize {
		t.Errorf("negative stripe accepted: %+v", h2)
	}
}

func TestEnvCaching(t *testing.T) {
	out, dir, err := testutil.Extracted("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	c := New()
	loads := 0
	c.LoadDir = func(d string) (*extractor.Output, error) {
		loads++
		return extractor.LoadDir(d)
	}
	kb := knowledge.NewBase(knowledge.DefaultHyperparams())
	b := prompt.NewBuilder(kb)
	reload, err := extractor.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	reload.Paths = map[string]string{}
	for name := range reload.Tables {
		reload.Paths[name] = dir + "/" + name + ".csv"
	}
	for _, id := range []issue.ID{issue.SmallIO, issue.MisalignedIO, issue.SharedFile} {
		req, err := b.Diagnosis(id, reload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Complete(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 1 {
		t.Errorf("CSV dir loaded %d times, want 1 (cache miss)", loads)
	}
}

func TestFirstSentences(t *testing.T) {
	text := "First point. Second point. Third point."
	if got := firstSentences(text, 1); got != "First point." {
		t.Errorf("got %q", got)
	}
	if got := firstSentences(text, 2); got != "First point. Second point." {
		t.Errorf("got %q", got)
	}
	// Decimal points must not split sentences.
	dec := "The rate is 99.8% of operations. Second."
	if got := firstSentences(dec, 1); !strings.Contains(got, "99.8%") {
		t.Errorf("decimal split: %q", got)
	}
}

func TestChatAnaphoricFollowUp(t *testing.T) {
	contextText := `[load-imbalance] Imbalanced I/O Workload
VERDICT: detected
Severe load imbalance detected: rank 0 performs most bytes.

[small-io] Small I/O Operations
VERDICT: mitigated
Small but consecutive operations aggregate fine.
`
	b := prompt.NewBuilder(knowledge.NewBase(knowledge.DefaultHyperparams()))
	client := New()

	// Turn 1 establishes the topic.
	req1 := b.Chat(contextText, nil, "Which rank causes the load imbalance?")
	a1, err := client.Complete(context.Background(), req1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a1.Content, "Imbalanced I/O Workload") {
		t.Fatalf("turn 1 off-topic: %s", a1.Content)
	}

	// Turn 2 is anaphoric: no topic words of its own.
	history := []llm.Message{
		{Role: llm.RoleUser, Content: "Which rank causes the load imbalance?"},
		{Role: llm.RoleAssistant, Content: a1.Content},
	}
	req2 := b.Chat(contextText, history, "Why is that happening?")
	a2, err := client.Complete(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a2.Content, "Imbalanced I/O Workload") {
		t.Errorf("follow-up lost the topic: %s", a2.Content)
	}
}
