package expertsim

import (
	"context"
	"strings"

	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/prompt"
)

// Contradictor wraps an inner llm.Client and rewrites the verdict line
// of every diagnosis completion to a forced verdict, leaving the steps,
// code, and conclusion untouched so the completion still parses. It
// exists to exercise the diagnosis-quality observatory: a wrapped
// expertsim produces plausible, well-formed diagnoses whose verdicts
// systematically contradict the deterministic Drishti baseline,
// driving the agreement gauge down and (via shadow re-runs against a
// different inner client) flipping cached verdicts. Drift-testing aid
// only — never wired into production paths.
type Contradictor struct {
	// Inner produces the completions to rewrite.
	Inner llm.Client
	// Force is the verdict every diagnosis is rewritten to state
	// (defaults to not-detected, the maximally "LGTM" drift).
	Force issue.Verdict
}

// Name implements llm.Client.
func (c *Contradictor) Name() string { return "contradict(" + c.Inner.Name() + ")" }

// Complete implements llm.Client: diagnosis completions get their
// final VERDICT line rewritten; everything else passes through.
func (c *Contradictor) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	comp, err := c.Inner.Complete(ctx, req)
	if err != nil {
		return comp, err
	}
	if req.Metadata[prompt.MetaKind] != prompt.KindDiagnosis {
		return comp, nil
	}
	force := c.Force
	if force == "" {
		force = issue.VerdictNotDetected
	}
	lines := strings.Split(strings.TrimRight(comp.Content, "\n"), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.HasPrefix(lines[i], prompt.VerdictPrefix) {
			lines[i] = prompt.VerdictPrefix + " " + string(force)
			break
		}
	}
	comp.Content = strings.Join(lines, "\n") + "\n"
	return comp, nil
}
