package expertsim

import (
	"fmt"
	"sort"
	"strings"

	"ion/internal/issue"
)

// chat answers an interactive follow-up question by retrieving the most
// relevant sections of the diagnosis context (the expert's memory of
// its own analysis) and composing an answer around them — the
// lightweight analogue of the paper's conversational interface.
func chat(content string) (string, error) {
	ctxStart := strings.Index(content, "## Diagnosis context")
	qStart := strings.Index(content, "## Question")
	if ctxStart < 0 || qStart < 0 || qStart < ctxStart {
		return "", fmt.Errorf("expertsim: chat prompt lacks context/question sections")
	}
	context := strings.TrimSpace(content[ctxStart+len("## Diagnosis context") : qStart])
	question := strings.TrimSpace(content[qStart+len("## Question"):])
	if question == "" {
		return "", fmt.Errorf("expertsim: empty question")
	}

	sections := splitContextSections(context)
	// Anaphoric follow-ups ("why?", "tell me more", "and how do I fix
	// that?") carry no topic words of their own: resolve them against
	// the running conversation, whose earlier turns precede the final
	// user message in the prompt.
	retrievalKey := question
	if scoreSections(sections, question) == nil {
		if prior := priorConversation(content, qStart); prior != "" {
			retrievalKey = prior + " " + question
		}
	}
	scored := scoreSections(sections, retrievalKey)

	wantsFix := containsAny(strings.ToLower(question),
		"fix", "improve", "optimiz", "solve", "resolve", "recommend", "what should", "how do i", "how can i")

	var b strings.Builder
	if len(scored) == 0 {
		b.WriteString("Based on the diagnosis I produced for this trace:\n\n")
		b.WriteString(firstSentences(context, 3))
		b.WriteString("\n\nCould you point me at a specific issue or number from the report? I can walk through the exact analysis steps behind it.")
		return b.String(), nil
	}

	top := scored[0]
	fmt.Fprintf(&b, "That question touches the **%s** analysis. ", top.title)
	if wantsFix {
		if rec, ok := Recommendations[top.id]; ok {
			fmt.Fprintf(&b, "The most effective remedy here: %s\n\n", rec)
		}
		b.WriteString("For context, this is what the analysis found:\n\n")
	} else {
		b.WriteString("Here is what the analysis established:\n\n")
	}
	b.WriteString(indent(strings.TrimSpace(top.body)))
	b.WriteString("\n")
	if len(scored) > 1 && scored[1].score > 0 {
		fmt.Fprintf(&b, "\nRelated: the **%s** analysis is also relevant — %s\n",
			scored[1].title, firstSentences(scored[1].body, 1))
	}
	if !wantsFix {
		if rec, ok := Recommendations[top.id]; ok {
			fmt.Fprintf(&b, "\nIf you want to act on it: %s\n", rec)
		}
	}
	return b.String(), nil
}

// ctxSection is one issue block of the report context.
type ctxSection struct {
	id    issue.ID
	title string
	body  string
	score int
}

// splitContextSections parses "[id] Title" headed blocks from the
// report context produced by ion.Report.ContextText.
func splitContextSections(context string) []ctxSection {
	lines := strings.Split(context, "\n")
	var sections []ctxSection
	var cur *ctxSection
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[") {
			if end := strings.Index(trimmed, "]"); end > 1 {
				id := issue.ID(trimmed[1:end])
				if issue.Valid(id) {
					if cur != nil {
						sections = append(sections, *cur)
					}
					cur = &ctxSection{id: id, title: strings.TrimSpace(trimmed[end+1:])}
					continue
				}
			}
		}
		if cur != nil {
			cur.body += line + "\n"
		}
	}
	if cur != nil {
		sections = append(sections, *cur)
	}
	return sections
}

// issueVocabulary maps query terms to issues for retrieval.
var issueVocabulary = map[issue.ID][]string{
	issue.SmallIO:       {"small", "tiny", "size", "aggregat", "rpc", "batch", "request size"},
	issue.MisalignedIO:  {"align", "misalign", "boundary", "stripe boundary", "offset"},
	issue.RandomAccess:  {"random", "strided", "stride", "seek", "contiguous", "sequential", "pattern", "jump"},
	issue.SharedFile:    {"shared", "share", "lock", "conflict", "contention", "stripe", "overlap", "ost"},
	issue.LoadImbalance: {"imbalance", "balance", "rank 0", "load", "skew", "uneven", "bytes per rank", "fill value", "work"},
	issue.Metadata:      {"metadata", "open", "stat", "mds", "create", "close", "files"},
	issue.Interface:     {"posix", "mpi-io", "mpiio", "interface", "library", "api"},
	issue.CollectiveIO:  {"collective", "independent", "two-phase", "romio", "hdf5 bug", "cb_write"},
	issue.TimeImbalance: {"slow", "time", "straggler", "variance", "fastest", "slowest", "wait"},
}

// scoreSections ranks sections by keyword overlap with the question.
func scoreSections(sections []ctxSection, question string) []ctxSection {
	q := strings.ToLower(question)
	var out []ctxSection
	for _, s := range sections {
		score := 0
		for _, term := range issueVocabulary[s.id] {
			if strings.Contains(q, term) {
				score += 2
			}
		}
		for _, w := range strings.Fields(strings.ToLower(s.title)) {
			if len(w) > 3 && strings.Contains(q, w) {
				score++
			}
		}
		// Detected issues win tie-breaks: they are what users ask about.
		if strings.Contains(s.body, "VERDICT: detected") {
			score++
		}
		if score > 0 {
			s.score = score
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	return out
}

// priorConversation extracts earlier turns of the chat (everything in
// the prompt before the diagnosis context block) to resolve anaphora.
func priorConversation(content string, qStart int) string {
	head := content[:qStart]
	if i := strings.Index(head, "# Interactive question"); i > 0 {
		return strings.TrimSpace(head[:i])
	}
	return ""
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) != "" {
			lines[i] = "> " + l
		} else {
			lines[i] = ">"
		}
	}
	return strings.Join(lines, "\n")
}
