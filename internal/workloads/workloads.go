// Package workloads generates the evaluation traces of the paper: the
// six controlled IO500-derived workloads of Figure 2 and the two real
// applications (OpenPMD, E2E) of Figure 3 in baseline and optimized
// variants. Each workload builds an operation stream, executes it on
// the iosim parallel-file-system simulator, and records the run into a
// Darshan log, carrying a ground-truth issue list for scoring.
package workloads

import (
	"fmt"
	"sort"

	"ion/internal/darshan"
	"ion/internal/iosim"
	"ion/internal/issue"
)

// Workload is one reproducible trace generator.
type Workload struct {
	// Name is the identifier used by CLIs and the benchmark harness,
	// e.g. "ior-easy-2k-shared".
	Name string
	// Title matches the paper's row label, e.g. "IOR-Easy-2KB-Shared-File".
	Title string
	// Description summarizes the access pattern.
	Description string
	// Exe is the command line recorded in the Darshan header.
	Exe string
	// NProcs is the number of MPI ranks.
	NProcs int
	// Truth is the ground-truth issue list for the evaluation.
	Truth []issue.Expectation
	// Config returns the simulator configuration for the run.
	Config func() iosim.Config
	// Layouts optionally overrides file striping before the run.
	Layouts map[string]iosim.Layout
	// Ops builds the operation stream.
	Ops func() []iosim.Op
}

// Generate runs the workload through the simulator and records a
// Darshan log with DXT tracing enabled.
func (w Workload) Generate() (*darshan.Log, error) {
	log, _, err := w.generate()
	return log, err
}

// GenerateWithStats also returns the simulator statistics, which the
// benchmark harness reports alongside diagnosis results.
func (w Workload) GenerateWithStats() (*darshan.Log, iosim.Stats, error) {
	return w.generate()
}

func (w Workload) generate() (*darshan.Log, iosim.Stats, error) {
	cfg := w.Config()
	sim := iosim.New(cfg)
	for file, layout := range w.Layouts {
		if err := sim.SetLayout(file, layout); err != nil {
			return nil, iosim.Stats{}, fmt.Errorf("workloads: %s: %w", w.Name, err)
		}
	}
	ops := w.Ops()
	if len(ops) == 0 {
		return nil, iosim.Stats{}, fmt.Errorf("workloads: %s produced no operations", w.Name)
	}
	results, err := sim.Run(ops)
	if err != nil {
		return nil, iosim.Stats{}, fmt.Errorf("workloads: %s: %w", w.Name, err)
	}
	log, err := Record(sim, ops, results, Meta{
		Exe:        w.Exe,
		NProcs:     w.NProcs,
		JobID:      int64(1000000 + len(w.Name)*7919),
		UID:        1001,
		StartTime:  1719000000,
		MountPoint: "/lustre",
		FSType:     "lustre",
		WithDXT:    true,
	})
	if err != nil {
		return nil, iosim.Stats{}, err
	}
	return log, sim.Stats(), nil
}

// Expect is a convenience constructor for ground-truth entries.
func Expect(id issue.ID, want issue.Verdict, note string) issue.Expectation {
	return issue.Expectation{Issue: id, Want: want, Note: note}
}

// All returns every workload of the evaluation, Figure 2 rows first,
// then the Figure 3 application traces.
func All() []Workload {
	return []Workload{
		IOREasy(2048, true),
		IOREasy(1<<20, true),
		IOREasy(1<<20, false),
		IORHard(),
		IORRandom4K(),
		MDWorkbench(),
		OpenPMD(false),
		OpenPMD(true),
		E2E(false),
		E2E(true),
	}
}

// ByName returns the named workload, searching the evaluation set and
// the extra (non-paper) workloads.
func ByName(name string) (Workload, error) {
	var names []string
	for _, w := range append(All(), Extras()...) {
		if w.Name == name {
			return w, nil
		}
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, names)
}

// Figure2 returns the six IO500-derived workloads in paper row order.
func Figure2() []Workload {
	return All()[:6]
}

// Figure3 returns the four application traces in paper row order.
func Figure3() []Workload {
	return All()[6:]
}
