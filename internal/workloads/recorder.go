package workloads

import (
	"fmt"
	"math"
	"sort"

	"ion/internal/darshan"
	"ion/internal/iosim"
)

// Meta carries job-level information the recorder stamps into the log.
type Meta struct {
	Exe        string
	NProcs     int
	JobID      int64
	UID        int
	StartTime  int64
	MountPoint string // e.g. "/lustre"
	FSType     string // e.g. "lustre"
	// WithDXT controls whether fine-grained DXT events are recorded.
	WithDXT bool
}

// Record folds a simulated run into a Darshan log: it derives every
// POSIX/MPI-IO/STDIO/Lustre counter from the operation stream and the
// simulator's timings, applies Darshan's shared-file reduction (records
// of files touched by multiple ranks collapse to a rank -1 record with
// fastest/slowest/variance statistics), and emits DXT events.
func Record(sim *iosim.Sim, ops []iosim.Op, results []iosim.Result, meta Meta) (*darshan.Log, error) {
	if len(ops) != len(results) {
		return nil, fmt.Errorf("workloads: %d ops but %d results", len(ops), len(results))
	}
	cfg := sim.Config()
	log := darshan.NewLog()
	log.Header.Exe = meta.Exe
	log.Header.UID = meta.UID
	log.Header.JobID = meta.JobID
	log.Header.NProcs = meta.NProcs
	log.Header.StartTime = meta.StartTime
	makespan := sim.Stats().Makespan
	log.Header.RunTime = makespan
	log.Header.EndTime = meta.StartTime + int64(math.Ceil(makespan))
	log.Header.Metadata["h"] = "romio_no_indep_rw=false;cb_nodes=4"
	log.Mounts = []darshan.Mount{
		{Point: meta.MountPoint, FSType: meta.FSType},
		{Point: "/", FSType: "ext4"},
	}

	acc := newAccumulator(log, cfg, sim, meta)
	for i, op := range ops {
		acc.observe(op, results[i])
	}
	acc.finalize()
	if err := log.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: recorded log invalid: %w", err)
	}
	return log, nil
}

// fileKey identifies one per-rank record under accumulation.
type fileKey struct {
	id   uint64
	rank int64
}

// streamState tracks consecutive/sequential detection for one access
// stream (one kind within one file/rank), mirroring Darshan runtime
// bookkeeping.
type streamState struct {
	hasPrev    bool
	prevOffset int64
	prevEnd    int64
}

type accumulator struct {
	log  *darshan.Log
	cfg  iosim.Config
	sim  *iosim.Sim
	meta Meta

	posix  map[fileKey]*darshan.Record
	mpiio  map[fileKey]*darshan.Record
	stdio  map[fileKey]*darshan.Record
	lustre map[uint64]bool

	// streams is keyed by (file, rank, kind) for consec/seq detection.
	streams map[streamKey]*streamState
	// lastKind tracks read/write alternation per (file, rank).
	lastKind map[fileKey]iosim.Kind
	hasKind  map[fileKey]bool

	// segments numbers DXT events per (file, rank).
	segments map[fileKey]int64
}

type streamKey struct {
	id   uint64
	rank int64
	kind iosim.Kind
}

func newAccumulator(log *darshan.Log, cfg iosim.Config, sim *iosim.Sim, meta Meta) *accumulator {
	return &accumulator{
		log: log, cfg: cfg, sim: sim, meta: meta,
		posix:    map[fileKey]*darshan.Record{},
		mpiio:    map[fileKey]*darshan.Record{},
		stdio:    map[fileKey]*darshan.Record{},
		lustre:   map[uint64]bool{},
		streams:  map[streamKey]*streamState{},
		lastKind: map[fileKey]iosim.Kind{},
		hasKind:  map[fileKey]bool{},
		segments: map[fileKey]int64{},
	}
}

// FileID derives the stable Darshan record id for a path (FNV-1a).
func FileID(path string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	// Darshan record ids print as unsigned decimals; clear the top bit
	// to stay comfortably inside int64 ranges some tools assume.
	return h &^ (1 << 63)
}

func (a *accumulator) record(m map[fileKey]*darshan.Record, id uint64, rank int64) *darshan.Record {
	k := fileKey{id, rank}
	r, ok := m[k]
	if !ok {
		r = darshan.NewRecord(id, rank)
		m[k] = r
	}
	return r
}

func (a *accumulator) observe(op iosim.Op, res iosim.Result) {
	id := FileID(op.File)
	a.log.Names[id] = op.File
	a.ensureLustre(id, op.File)

	switch op.API {
	case iosim.APISTDIO:
		a.observeSTDIO(op, res, id)
	case iosim.APIMPIIOIndep, iosim.APIMPIIOColl:
		a.observeMPIIO(op, res, id)
		// MPI-IO is layered on POSIX: the data path also shows up in the
		// POSIX module, as it does under real ROMIO.
		a.observePOSIX(op, res, id)
	default:
		a.observePOSIX(op, res, id)
	}

	if a.meta.WithDXT && (op.Kind == iosim.KindRead || op.Kind == iosim.KindWrite) {
		a.observeDXT(op, res, id)
	}
}

func (a *accumulator) observePOSIX(op iosim.Op, res iosim.Result, id uint64) {
	r := a.record(a.posix, id, int64(op.Rank))
	dur := res.Duration()
	switch op.Kind {
	case iosim.KindOpen:
		r.Add(darshan.CPosixOpens, 1)
		r.FAdd(darshan.FPosixMetaTime, dur)
		r.FSetMin(darshan.FPosixOpenStart, res.Start)
		r.FSetMax(darshan.FPosixOpenEnd, res.End)
	case iosim.KindClose:
		r.FAdd(darshan.FPosixMetaTime, dur)
		r.FSetMin(darshan.FPosixCloseStart, res.Start)
		r.FSetMax(darshan.FPosixCloseEnd, res.End)
	case iosim.KindStat:
		r.Add(darshan.CPosixStats, 1)
		r.FAdd(darshan.FPosixMetaTime, dur)
	case iosim.KindSeek:
		r.Add(darshan.CPosixSeeks, 1)
		r.FAdd(darshan.FPosixMetaTime, dur)
	case iosim.KindFsync:
		r.Add(darshan.CPosixFsyncs, 1)
		r.FAdd(darshan.FPosixMetaTime, dur)
	case iosim.KindRead:
		r.Add(darshan.CPosixReads, 1)
		r.Add(darshan.CPosixBytesRead, op.Size)
		r.Add("POSIX_SIZE_READ_"+darshan.SizeBinFor(op.Size), 1)
		r.SetMax(darshan.CPosixMaxByteRead, op.Offset+op.Size-1)
		r.FAdd(darshan.FPosixReadTime, dur)
		r.FSetMax(darshan.FPosixMaxReadTime, dur)
		r.FSetMin(darshan.FPosixReadStart, res.Start)
		r.FSetMax(darshan.FPosixReadEnd, res.End)
		a.observeAccessPattern(op, r, id)
	case iosim.KindWrite:
		r.Add(darshan.CPosixWrites, 1)
		r.Add(darshan.CPosixBytesWritten, op.Size)
		r.Add("POSIX_SIZE_WRITE_"+darshan.SizeBinFor(op.Size), 1)
		r.SetMax(darshan.CPosixMaxByteWritten, op.Offset+op.Size-1)
		r.FAdd(darshan.FPosixWriteTime, dur)
		r.FSetMax(darshan.FPosixMaxWriteTime, dur)
		r.FSetMin(darshan.FPosixWriteStart, res.Start)
		r.FSetMax(darshan.FPosixWriteEnd, res.End)
		a.observeAccessPattern(op, r, id)
	}
	r.Counters[darshan.CPosixMemAlignment] = a.cfg.MemAlignment
	r.Counters[darshan.CPosixFileAlignment] = a.fileAlignment(op.File)
}

// observeAccessPattern updates alignment, consecutiveness, sequential
// and read/write switch counters for a data access.
func (a *accumulator) observeAccessPattern(op iosim.Op, r *darshan.Record, id uint64) {
	align := a.fileAlignment(op.File)
	if align > 0 && op.Offset%align != 0 {
		r.Add(darshan.CPosixFileNotAligned, 1)
	}
	if !op.MemAligned {
		r.Add(darshan.CPosixMemNotAligned, 1)
	}

	sk := streamKey{id, int64(op.Rank), op.Kind}
	st, ok := a.streams[sk]
	if !ok {
		st = &streamState{}
		a.streams[sk] = st
	}
	var consecC, seqC string
	if op.Kind == iosim.KindRead {
		consecC, seqC = darshan.CPosixConsecReads, darshan.CPosixSeqReads
	} else {
		consecC, seqC = darshan.CPosixConsecWrites, darshan.CPosixSeqWrites
	}
	if st.hasPrev {
		if op.Offset == st.prevEnd {
			r.Add(consecC, 1)
		}
		if op.Offset > st.prevOffset {
			r.Add(seqC, 1)
		}
	}
	st.hasPrev = true
	st.prevOffset = op.Offset
	st.prevEnd = op.Offset + op.Size

	fk := fileKey{id, int64(op.Rank)}
	if a.hasKind[fk] && a.lastKind[fk] != op.Kind {
		r.Add(darshan.CPosixRWSwitches, 1)
	}
	a.hasKind[fk] = true
	a.lastKind[fk] = op.Kind
}

func (a *accumulator) observeMPIIO(op iosim.Op, res iosim.Result, id uint64) {
	r := a.record(a.mpiio, id, int64(op.Rank))
	dur := res.Duration()
	coll := op.API == iosim.APIMPIIOColl
	switch op.Kind {
	case iosim.KindOpen:
		if coll {
			r.Add(darshan.CMpiioCollOpens, 1)
		} else {
			r.Add(darshan.CMpiioIndepOpens, 1)
		}
		r.FAdd(darshan.FMpiioMetaTime, dur)
		r.FSetMin(darshan.FMpiioOpenStart, res.Start)
	case iosim.KindClose:
		r.FAdd(darshan.FMpiioMetaTime, dur)
		r.FSetMax(darshan.FMpiioCloseEnd, res.End)
	case iosim.KindFsync:
		r.Add(darshan.CMpiioSyncs, 1)
		r.FAdd(darshan.FMpiioMetaTime, dur)
	case iosim.KindRead:
		if coll {
			r.Add(darshan.CMpiioCollReads, 1)
		} else {
			r.Add(darshan.CMpiioIndepReads, 1)
		}
		r.Add(darshan.CMpiioBytesRead, op.Size)
		r.Add("MPIIO_SIZE_READ_AGG_"+darshan.SizeBinFor(op.Size), 1)
		r.FAdd(darshan.FMpiioReadTime, dur)
	case iosim.KindWrite:
		if coll {
			r.Add(darshan.CMpiioCollWrites, 1)
		} else {
			r.Add(darshan.CMpiioIndepWrites, 1)
		}
		r.Add(darshan.CMpiioBytesWritten, op.Size)
		r.Add("MPIIO_SIZE_WRITE_AGG_"+darshan.SizeBinFor(op.Size), 1)
		r.FAdd(darshan.FMpiioWriteTime, dur)
	}
}

func (a *accumulator) observeSTDIO(op iosim.Op, res iosim.Result, id uint64) {
	r := a.record(a.stdio, id, int64(op.Rank))
	dur := res.Duration()
	switch op.Kind {
	case iosim.KindOpen:
		r.Add(darshan.CStdioOpens, 1)
		r.FAdd(darshan.FStdioMetaTime, dur)
	case iosim.KindClose, iosim.KindStat:
		r.FAdd(darshan.FStdioMetaTime, dur)
	case iosim.KindSeek:
		r.Add(darshan.CStdioSeeks, 1)
		r.FAdd(darshan.FStdioMetaTime, dur)
	case iosim.KindFsync:
		r.Add(darshan.CStdioFlushes, 1)
		r.FAdd(darshan.FStdioMetaTime, dur)
	case iosim.KindRead:
		r.Add(darshan.CStdioReads, 1)
		r.Add(darshan.CStdioBytesRead, op.Size)
		r.FAdd(darshan.FStdioReadTime, dur)
	case iosim.KindWrite:
		r.Add(darshan.CStdioWrites, 1)
		r.Add(darshan.CStdioBytesWritten, op.Size)
		r.FAdd(darshan.FStdioWriteTime, dur)
	}
}

func (a *accumulator) observeDXT(op iosim.Op, res iosim.Result, id uint64) {
	fk := fileKey{id, int64(op.Rank)}
	seg := a.segments[fk]
	a.segments[fk] = seg + 1
	module := darshan.DXTPosix
	if op.API == iosim.APIMPIIOIndep || op.API == iosim.APIMPIIOColl {
		module = darshan.DXTMPIIO
	}
	kind := darshan.OpRead
	if op.Kind == iosim.KindWrite {
		kind = darshan.OpWrite
	}
	tr := a.log.DXTForFile(id)
	if tr.Hostname == "" {
		tr.Hostname = fmt.Sprintf("nid%05d", op.Rank%64)
	}
	tr.Events = append(tr.Events, darshan.DXTEvent{
		Module: module, Rank: int64(op.Rank), Op: kind,
		Segment: seg, Offset: op.Offset, Length: op.Size,
		Start: res.Start, End: res.End, OSTs: res.OSTs,
	})
}

func (a *accumulator) ensureLustre(id uint64, file string) {
	if a.lustre[id] || a.meta.FSType != "lustre" {
		return
	}
	a.lustre[id] = true
	layout := a.sim.Layout(file)
	r := a.log.Module(darshan.ModLustre).Record(id, darshan.SharedRank)
	r.Counters[darshan.CLustreOSTs] = int64(a.cfg.NumOSTs)
	mdts := int64(a.cfg.NumMDTs)
	if mdts <= 0 {
		mdts = 1
	}
	r.Counters[darshan.CLustreMDTs] = mdts
	r.Counters[darshan.CLustreStripeOffset] = int64(layout.StripeOffset)
	r.Counters[darshan.CLustreStripeSize] = layout.StripeSize
	r.Counters[darshan.CLustreStripeWidth] = int64(layout.StripeCount)
	for k := 0; k < layout.StripeCount; k++ {
		r.Counters[fmt.Sprintf("LUSTRE_OST_ID_%d", k)] = int64((layout.StripeOffset + k) % a.cfg.NumOSTs)
	}
}

func (a *accumulator) fileAlignment(file string) int64 {
	if a.meta.FSType == "lustre" {
		return a.sim.Layout(file).StripeSize
	}
	return 4096
}

// finalize applies Darshan's shared-file reduction and installs the
// accumulated records into the log's modules.
func (a *accumulator) finalize() {
	a.reduce(a.posix, darshan.ModPOSIX)
	a.reduce(a.mpiio, darshan.ModMPIIO)
	a.reduce(a.stdio, darshan.ModSTDIO)
	for _, t := range a.log.DXT {
		t.SortByStart()
	}
}

// reduce collapses per-rank records of multi-rank files into one shared
// (rank -1) record with fastest/slowest/variance statistics, and copies
// single-rank records through unchanged — matching darshan-util.
func (a *accumulator) reduce(recs map[fileKey]*darshan.Record, module string) {
	if len(recs) == 0 {
		return
	}
	mod := a.log.Module(module)
	byFile := map[uint64][]*darshan.Record{}
	for k, r := range recs {
		byFile[k.id] = append(byFile[k.id], r)
	}
	// Deterministic reduction: process files by id and ranks in order,
	// so float accumulation (times, variances) is reproducible.
	ids := make([]uint64, 0, len(byFile))
	for id := range byFile {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rs := byFile[id]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Rank < rs[j].Rank })
		if len(rs) == 1 {
			mod.Records = append(mod.Records, rs[0])
			continue
		}
		shared := darshan.NewRecord(id, darshan.SharedRank)
		type rankLoad struct {
			rank  int64
			time  float64
			bytes int64
		}
		loads := make([]rankLoad, 0, len(rs))
		for _, r := range rs {
			for c, v := range r.Counters {
				switch c {
				case darshan.CPosixMemAlignment, darshan.CPosixFileAlignment:
					shared.Counters[c] = v
				case darshan.CPosixMaxByteRead, darshan.CPosixMaxByteWritten:
					shared.SetMax(c, v)
				default:
					shared.Counters[c] += v
				}
			}
			for c, v := range r.FCounters {
				switch {
				case isStartTimestamp(c):
					shared.FSetMin(c, v)
				case isEndTimestamp(c):
					shared.FSetMax(c, v)
				case isMaxTime(c):
					shared.FSetMax(c, v)
				default:
					shared.FCounters[c] += v
				}
			}
			t, b := ioLoad(module, r)
			loads = append(loads, rankLoad{rank: r.Rank, time: t, bytes: b})
		}
		if module == darshan.ModPOSIX {
			fastest, slowest := loads[0], loads[0]
			var meanT, meanB float64
			for _, l := range loads {
				if l.time < fastest.time {
					fastest = l
				}
				if l.time > slowest.time {
					slowest = l
				}
				meanT += l.time
				meanB += float64(l.bytes)
			}
			meanT /= float64(len(loads))
			meanB /= float64(len(loads))
			var varT, varB float64
			for _, l := range loads {
				varT += (l.time - meanT) * (l.time - meanT)
				varB += (float64(l.bytes) - meanB) * (float64(l.bytes) - meanB)
			}
			varT /= float64(len(loads))
			varB /= float64(len(loads))
			shared.Counters[darshan.CPosixFastestRank] = fastest.rank
			shared.Counters[darshan.CPosixFastestBytes] = fastest.bytes
			shared.Counters[darshan.CPosixSlowestRank] = slowest.rank
			shared.Counters[darshan.CPosixSlowestBytes] = slowest.bytes
			shared.FCounters[darshan.FPosixFastestTime] = fastest.time
			shared.FCounters[darshan.FPosixSlowestTime] = slowest.time
			shared.FCounters[darshan.FPosixVarianceTime] = varT
			shared.FCounters[darshan.FPosixVarianceBytes] = varB
		}
		if module == darshan.ModMPIIO {
			var meanT, meanB float64
			for _, l := range loads {
				meanT += l.time
				meanB += float64(l.bytes)
			}
			meanT /= float64(len(loads))
			meanB /= float64(len(loads))
			var varT, varB float64
			for _, l := range loads {
				varT += (l.time - meanT) * (l.time - meanT)
				varB += (float64(l.bytes) - meanB) * (float64(l.bytes) - meanB)
			}
			shared.FCounters[darshan.FMpiioVarianceTime] = varT / float64(len(loads))
			shared.FCounters[darshan.FMpiioVarianceBytes] = varB / float64(len(loads))
		}
		mod.Records = append(mod.Records, shared)
	}
}

// ioLoad returns the total I/O seconds and bytes of one per-rank record.
func ioLoad(module string, r *darshan.Record) (float64, int64) {
	switch module {
	case darshan.ModPOSIX:
		return r.F(darshan.FPosixReadTime) + r.F(darshan.FPosixWriteTime) + r.F(darshan.FPosixMetaTime),
			r.C(darshan.CPosixBytesRead) + r.C(darshan.CPosixBytesWritten)
	case darshan.ModMPIIO:
		return r.F(darshan.FMpiioReadTime) + r.F(darshan.FMpiioWriteTime) + r.F(darshan.FMpiioMetaTime),
			r.C(darshan.CMpiioBytesRead) + r.C(darshan.CMpiioBytesWritten)
	case darshan.ModSTDIO:
		return r.F(darshan.FStdioReadTime) + r.F(darshan.FStdioWriteTime) + r.F(darshan.FStdioMetaTime),
			r.C(darshan.CStdioBytesRead) + r.C(darshan.CStdioBytesWritten)
	}
	return 0, 0
}

func isStartTimestamp(c string) bool {
	return len(c) > 16 && c[len(c)-16:] == "_START_TIMESTAMP"
}

func isEndTimestamp(c string) bool {
	return len(c) > 14 && c[len(c)-14:] == "_END_TIMESTAMP"
}

func isMaxTime(c string) bool {
	switch c {
	case darshan.FPosixMaxReadTime, darshan.FPosixMaxWriteTime:
		return true
	}
	return false
}
