package workloads

import (
	"fmt"

	"ion/internal/iosim"
	"ion/internal/issue"
)

// Extra workloads beyond the paper's evaluation set: a healthy
// reference run (the false-positive regression anchor — a correct
// expert must stay quiet) and an STDIO-bound post-processor (exercises
// the STDIO module and the interface analysis).

// Healthy models a well-tuned checkpoint writer: every rank issues
// large, stripe-aligned collective writes into disjoint regions of a
// widely striped shared file. Nothing about this run deserves a
// warning.
func Healthy() Workload {
	const (
		ranks     = 16
		perRank   = 32
		blockSize = 8 << 20 // 2x the RPC size: full-size transfers
	)
	return Workload{
		Name:  "healthy-checkpoint",
		Title: "Healthy-Checkpoint",
		Description: fmt.Sprintf(
			"well-tuned checkpoint: %d ranks, %d aligned 8 MiB collective writes each, disjoint regions", ranks, perRank),
		Exe:    "./ckpt-writer -collective -aligned",
		NProcs: ranks,
		// No expectations: the ground truth is a clean bill of health.
		// The evaluation treats any detected verdict as a false positive.
		Truth:  nil,
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			const file = "/lustre/ckpt/checkpoint.00"
			var ops []iosim.Op
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file, API: iosim.APIMPIIOColl})
			}
			for r := 0; r < ranks; r++ {
				base := int64(r) * perRank * blockSize
				for i := 0; i < perRank; i++ {
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: file,
						Offset: base + int64(i)*blockSize, Size: blockSize,
						API: iosim.APIMPIIOColl, MemAligned: true,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file, API: iosim.APIMPIIOColl})
			}
			return ops
		},
	}
}

// StdioPostprocess models a serial analysis script that funnels its
// output through buffered STDIO in small fwrite calls — the pattern the
// STDIO module exists to expose.
func StdioPostprocess() Workload {
	const (
		records = 4096
		recSize = 512
	)
	return Workload{
		Name:  "stdio-postprocess",
		Title: "STDIO-Postprocess",
		Description: fmt.Sprintf(
			"serial post-processor: %d fwrite calls of %d bytes through STDIO", records, recSize),
		Exe:    "python plot_results.py",
		NProcs: 1,
		Truth: []issue.Expectation{
			// Single-rank STDIO output: small ops are real but the run is
			// serial, so the parallel-I/O issues must stay quiet; small
			// consecutive fwrites aggregate in libc's buffer.
			Expect(issue.SmallIO, issue.VerdictMitigated,
				"tiny fwrites, but consecutive: libc buffering coalesces them"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			const file = "/lustre/results/summary.csv"
			ops := []iosim.Op{{Rank: 0, Kind: iosim.KindOpen, File: file, API: iosim.APISTDIO}}
			for i := 0; i < records; i++ {
				ops = append(ops, iosim.Op{
					Rank: 0, Kind: iosim.KindWrite, File: file,
					Offset: int64(i) * recSize, Size: recSize,
					API: iosim.APISTDIO, MemAligned: true,
				})
			}
			ops = append(ops,
				iosim.Op{Rank: 0, Kind: iosim.KindFsync, File: file, API: iosim.APISTDIO},
				iosim.Op{Rank: 0, Kind: iosim.KindClose, File: file, API: iosim.APISTDIO})
			return ops
		},
	}
}

// Extras returns the additional non-paper workloads.
func Extras() []Workload {
	return []Workload{Healthy(), StdioPostprocess()}
}
