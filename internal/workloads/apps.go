package workloads

import (
	"fmt"
	"math/rand"

	"ion/internal/iosim"
	"ion/internal/issue"
)

// The Figure 3 application traces. Both applications are regenerated
// from the pathologies the paper documents: the OpenPMD baseline
// suffers an HDF5 bug that degrades collective writes into per-rank
// small, misaligned independent operations; the E2E baseline suffers a
// fill-value bug that concentrates nearly all write work on rank 0.

const (
	openPMDFile  = "/lustre/openpmd/8a_parallel_3Db_0000001.h5"
	openPMDRanks = 384

	e2eFile  = "/lustre/e2e/3d_32_32_16_32_32_32.nc4"
	e2eRanks = 1024
)

// OpenPMD models the openPMD-api particle/mesh writer. The baseline
// variant reproduces the HDF5 collective-metadata bug: every rank emits
// runs of small, misaligned, independent writes plus small header
// reads. The optimized variant (bug fixed) performs large aligned
// collective writes with a modest residue of random small reads.
func OpenPMD(optimized bool) Workload {
	if optimized {
		return openPMDOptimized()
	}
	return openPMDBaseline()
}

func openPMDBaseline() Workload {
	const (
		smallWritesPerRank = 64
		smallReadsPerRank  = 40
	)
	return Workload{
		Name:  "openpmd-baseline",
		Title: "OpenPMD (Baseline)",
		Description: fmt.Sprintf(
			"openPMD on HDF5 with collective-I/O bug: %d ranks issue small misaligned independent writes to one shared .h5 file",
			openPMDRanks),
		Exe:    "./8a_benchmark_read_parallel (openPMD-api, HDF5 1.10 bug)",
		NProcs: openPMDRanks,
		Truth: []issue.Expectation{
			Expect(issue.SmallIO, issue.VerdictDetected,
				"~99% of operations are small; mostly consecutive, so aggregation can absorb part of the damage"),
			Expect(issue.MisalignedIO, issue.VerdictDetected,
				"every degraded write lands off the 1 MiB stripe boundary (~100% misaligned)"),
			Expect(issue.SharedFile, issue.VerdictDetected,
				"384 ranks write interleaved regions of one file; neighboring ranks share stripes"),
			Expect(issue.CollectiveIO, issue.VerdictDetected,
				"MPI-IO is open collectively but data lands as independent operations (the HDF5 bug)"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			rng := rand.New(rand.NewSource(8401))
			var ops []iosim.Op
			for r := 0; r < openPMDRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: openPMDFile, API: iosim.APIMPIIOColl})
			}
			// Degraded collective writes: per-rank runs of small,
			// misaligned, *independent* accesses packed so neighboring
			// ranks share stripes.
			const regionSize = 300 << 10 // ~300 KiB per rank: several ranks per stripe
			for r := 0; r < openPMDRanks; r++ {
				base := int64(4096+64*r) + int64(r)*regionSize
				off := base
				for i := 0; i < smallWritesPerRank; i++ {
					size := int64(512 + rng.Intn(7)*512) // 512B..3.5KiB
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: openPMDFile,
						Offset: off, Size: size,
						API: iosim.APIMPIIOIndep, MemAligned: false,
					})
					off += size
				}
				// One surviving large chunk write per rank.
				ops = append(ops, iosim.Op{
					Rank: r, Kind: iosim.KindWrite, File: openPMDFile,
					Offset: off, Size: 96 << 10,
					API: iosim.APIMPIIOIndep, MemAligned: false,
				})
			}
			// Header/metadata reads: small, consecutive, from the file
			// front (all ranks re-read the self-describing structure).
			for r := 0; r < openPMDRanks; r++ {
				off := int64(17)
				for i := 0; i < smallReadsPerRank; i++ {
					size := int64(256 + rng.Intn(4)*256)
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindRead, File: openPMDFile,
						Offset: off, Size: size,
						API: iosim.APIMPIIOIndep, MemAligned: false,
					})
					off += size
				}
			}
			for r := 0; r < openPMDRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: openPMDFile, API: iosim.APIMPIIOColl})
			}
			return ops
		},
	}
}

func openPMDOptimized() Workload {
	const (
		collWritesPerRank = 58 // large aligned collective chunks
		seqReadsPerRank   = 1  // header re-read
		randReadsPerRank  = 2  // residual random lookups (paper: ~35% of reads flagged random)
	)
	return Workload{
		Name:  "openpmd-optimized",
		Title: "OpenPMD (Optimized)",
		Description: fmt.Sprintf(
			"openPMD with the HDF5 fix: %d ranks issue large aligned collective writes; a small residue of random reads remains",
			openPMDRanks),
		Exe:    "./8a_benchmark_read_parallel (openPMD-api, HDF5 fixed)",
		NProcs: openPMDRanks,
		Truth: []issue.Expectation{
			Expect(issue.SmallIO, issue.VerdictMitigated,
				"only a small share of operations are small, and their data volume is negligible"),
			Expect(issue.RandomAccess, issue.VerdictMitigated,
				"random reads exist but per-rank counts and transferred volume are low"),
			Expect(issue.SharedFile, issue.VerdictMitigated,
				"all ranks share the file, but collective buffering produces non-overlapping aligned accesses"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			rng := rand.New(rand.NewSource(8402))
			var ops []iosim.Op
			for r := 0; r < openPMDRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: openPMDFile, API: iosim.APIMPIIOColl})
			}
			// Large aligned collective writes: rank r owns aligned 4 MiB
			// blocks, disjoint by construction.
			const block = 4 << 20
			for r := 0; r < openPMDRanks; r++ {
				for i := 0; i < collWritesPerRank; i++ {
					off := int64(r*collWritesPerRank+i) * block
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: openPMDFile,
						Offset: off, Size: block,
						API: iosim.APIMPIIOColl, MemAligned: true,
					})
				}
			}
			// Residual reads: a few sequential header reads plus a small
			// number of random-offset reads per rank.
			span := int64(openPMDRanks*collWritesPerRank) * block
			for r := 0; r < openPMDRanks; r++ {
				off := int64(1 << 20)
				for i := 0; i < seqReadsPerRank; i++ {
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindRead, File: openPMDFile,
						Offset: off, Size: 8192,
						API: iosim.APIMPIIOIndep, MemAligned: true,
					})
					off += 8192
				}
				for i := 0; i < randReadsPerRank; i++ {
					off := (rng.Int63n(span/4096) / 2) * 8192
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindRead, File: openPMDFile,
						Offset: off, Size: 4096,
						API: iosim.APIMPIIOIndep, MemAligned: true,
					})
				}
			}
			for r := 0; r < openPMDRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: openPMDFile, API: iosim.APIMPIIOColl})
			}
			return ops
		},
	}
}

// E2E models the end-to-end domain-decomposition I/O kernel writing a
// netCDF-4 file through MPI-IO. The baseline variant reproduces the
// fill-value bug: rank 0 pre-writes fill values across the datasets and
// ends up issuing nearly all bytes. The optimized variant disables fill
// values; writes flow through a 64-rank aggregator subset instead.
func E2E(optimized bool) Workload {
	if optimized {
		return e2eOptimized()
	}
	return e2eBaseline()
}

func e2eBaseline() Workload {
	const (
		fillWrites     = 1920    // rank 0 fill-value writes
		fillSize       = 1 << 20 // 1 MiB each, but misaligned
		domainWrites   = 8       // per non-zero rank
		domainSize     = 2 << 20
		misalignOffset = 3571 // netCDF header skews every record offset
	)
	return Workload{
		Name:  "e2e-baseline",
		Title: "E2E (Baseline)",
		Description: fmt.Sprintf(
			"E2E domain decomposition with fill values: rank 0 pre-writes the datasets (%d×1MiB) while %d ranks write twice each",
			fillWrites, e2eRanks-1),
		Exe:    "./e2e-io -w 3d_32_32_16_32_32_32.nc4 (fill values on)",
		NProcs: e2eRanks,
		Truth: []issue.Expectation{
			Expect(issue.LoadImbalance, issue.VerdictDetected,
				"rank 0 moves ~99.9% of all bytes writing fill values for datasets that are later overwritten"),
			Expect(issue.MisalignedIO, issue.VerdictDetected,
				"the netCDF header skews every record write off the stripe boundary (~99.8%)"),
			Expect(issue.SharedFile, issue.VerdictDetected,
				"rank 0's fill writes overlap the regions other ranks later overwrite"),
			Expect(issue.TimeImbalance, issue.VerdictDetected,
				"rank 0's I/O time exceeds the per-rank mean by two orders of magnitude"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			var ops []iosim.Op
			for r := 0; r < e2eRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: e2eFile, API: iosim.APIMPIIOColl})
			}
			// Rank 0: fill-value sweep across the whole variable space.
			for i := 0; i < fillWrites; i++ {
				ops = append(ops, iosim.Op{
					Rank: 0, Kind: iosim.KindWrite, File: e2eFile,
					Offset: misalignOffset + int64(i)*fillSize, Size: fillSize,
					API: iosim.APIMPIIOIndep, MemAligned: false,
				})
			}
			// All ranks then write their domain records through the
			// collective path: per-rank consecutive blocks whose offsets
			// wrap inside the filled extent, so every record overwrites
			// part of rank 0's fill sweep.
			fillExtent := int64(fillWrites) * fillSize
			for r := 1; r < e2eRanks; r++ {
				base := (int64(r) * int64(domainWrites) * domainSize) % fillExtent
				for i := 0; i < domainWrites; i++ {
					off := misalignOffset + (base+int64(i)*domainSize)%fillExtent
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: e2eFile,
						Offset: off, Size: domainSize,
						API: iosim.APIMPIIOColl, MemAligned: false,
					})
				}
			}
			for r := 0; r < e2eRanks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: e2eFile, API: iosim.APIMPIIOColl})
			}
			return ops
		},
	}
}

func e2eOptimized() Workload {
	const (
		aggregators    = 64
		writesPerAgg   = 60
		aggWriteSize   = 2 << 20
		misalignOffset = 3571
	)
	return Workload{
		Name:  "e2e-optimized",
		Title: "E2E (Optimized)",
		Description: fmt.Sprintf(
			"E2E with fill values disabled: %d aggregator ranks perform ~98%% of the writes on behalf of %d ranks",
			aggregators, e2eRanks),
		Exe:    "./e2e-io -w 3d_32_32_16_32_32_32.nc4 (no_fill)",
		NProcs: e2eRanks,
		Truth: []issue.Expectation{
			Expect(issue.MisalignedIO, issue.VerdictDetected,
				"the netCDF header still skews every write off the stripe boundary (~99.8%)"),
			Expect(issue.LoadImbalance, issue.VerdictMitigated,
				"a 64-rank subset issues ~98% of writes — an aggregator pattern, likely intentional"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			// ROMIO deferred open: with collective buffering only the
			// aggregator ranks touch the file at the POSIX level — the
			// other 960 ranks hand their data over MPI and never appear
			// in the trace (which is exactly why counter-only tools
			// cannot see the subset pattern, while the DXT-aware
			// analysis can).
			var ops []iosim.Op
			stride := e2eRanks / aggregators
			for r := 0; r < e2eRanks; r += stride {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: e2eFile, API: iosim.APIMPIIOColl})
			}
			agg := 0
			for r := 0; r < e2eRanks; r += stride {
				for i := 0; i < writesPerAgg; i++ {
					off := misalignOffset + int64(agg*writesPerAgg+i)*aggWriteSize
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: e2eFile,
						Offset: off, Size: aggWriteSize,
						API: iosim.APIMPIIOColl, MemAligned: false,
					})
				}
				agg++
			}
			for r := 0; r < e2eRanks; r += stride {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: e2eFile, API: iosim.APIMPIIOColl})
			}
			return ops
		},
	}
}
