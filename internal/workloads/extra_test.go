package workloads

import (
	"bytes"
	"testing"

	"ion/internal/issue"
)

func TestExtrasGenerate(t *testing.T) {
	for _, w := range Extras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			l, err := w.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHealthyHasNoLargeOrMisalignedSmalls(t *testing.T) {
	w := Healthy()
	l, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := smallShare(l); got != 0 {
		t.Errorf("healthy small share = %.4f", got)
	}
	if got := misalignShare(l); got != 0 {
		t.Errorf("healthy misalign share = %.4f", got)
	}
}

func TestStdioWorkloadModules(t *testing.T) {
	w := StdioPostprocess()
	l, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !l.HasModule("STDIO") {
		t.Error("STDIO module missing")
	}
	if l.HasModule("POSIX") {
		t.Error("STDIO-only run must not populate POSIX")
	}
	for _, e := range w.Truth {
		if !issue.Valid(e.Issue) {
			t.Errorf("bad expectation %v", e)
		}
	}
}

func TestByNameFindsExtras(t *testing.T) {
	if _, err := ByName("healthy-checkpoint"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("stdio-postprocess"); err != nil {
		t.Error(err)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	// Generating the same workload twice yields byte-identical logs —
	// the property the golden figure tests and record/replay rely on.
	for _, name := range []string{"ior-rnd4k", "openpmd-baseline"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.Generate()
		if err != nil {
			t.Fatal(err)
		}
		var ta, tb bytes.Buffer
		if err := a.WriteText(&ta); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteDXTText(&ta); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteText(&tb); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteDXTText(&tb); err != nil {
			t.Fatal(err)
		}
		if ta.String() != tb.String() {
			t.Errorf("%s: generation not deterministic", name)
		}
	}
}
