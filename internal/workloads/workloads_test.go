package workloads

import (
	"strings"
	"testing"

	"ion/internal/darshan"
	"ion/internal/issue"
)

// generated caches workload logs so the many shape tests don't re-run
// the simulator per test.
var generated = map[string]*darshan.Log{}

func logFor(t *testing.T, name string) *darshan.Log {
	t.Helper()
	if l, ok := generated[name]; ok {
		return l
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	l, err := w.Generate()
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	generated[name] = l
	return l
}

// posixTotals sums a counter across all POSIX records.
func posixTotals(l *darshan.Log, counter string) int64 {
	var n int64
	for _, r := range l.Module(darshan.ModPOSIX).Records {
		n += r.C(counter)
	}
	return n
}

func smallShare(l *darshan.Log) float64 {
	var small, total int64
	for _, r := range l.Module(darshan.ModPOSIX).Records {
		total += r.C(darshan.CPosixReads) + r.C(darshan.CPosixWrites)
		for _, b := range darshan.SizeBins {
			if b.Hi > 0 && b.Hi <= 1<<20 {
				small += r.C("POSIX_SIZE_READ_" + b.Suffix)
				small += r.C("POSIX_SIZE_WRITE_" + b.Suffix)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(small) / float64(total)
}

func misalignShare(l *darshan.Log) float64 {
	var mis, total int64
	for _, r := range l.Module(darshan.ModPOSIX).Records {
		total += r.C(darshan.CPosixReads) + r.C(darshan.CPosixWrites)
		mis += r.C(darshan.CPosixFileNotAligned)
	}
	if total == 0 {
		return 0
	}
	return float64(mis) / float64(total)
}

func TestAllWorkloadsGenerateValidLogs(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			l := logFor(t, w.Name)
			if err := l.Validate(); err != nil {
				t.Fatalf("invalid log: %v", err)
			}
			if l.Header.NProcs != w.NProcs {
				t.Errorf("nprocs: got %d want %d", l.Header.NProcs, w.NProcs)
			}
			if l.Header.RunTime <= 0 {
				t.Error("runtime not positive")
			}
			if !l.HasModule(darshan.ModPOSIX) {
				t.Error("no POSIX module")
			}
			if !l.HasModule(darshan.ModLustre) {
				t.Error("no LUSTRE module")
			}
			if len(l.DXT) == 0 {
				t.Error("no DXT traces")
			}
			for _, exp := range w.Truth {
				if !issue.Valid(exp.Issue) {
					t.Errorf("ground truth references unknown issue %q", exp.Issue)
				}
			}
		})
	}
}

func TestIOREasy2KShape(t *testing.T) {
	l := logFor(t, "ior-easy-2k-shared")
	if got := smallShare(l); got < 0.99 {
		t.Errorf("small share = %.4f, want ~1.0", got)
	}
	// 2 KiB accesses are misaligned except at exact 1 MiB multiples
	// (1 in 512): expect ~99.8%.
	if got := misalignShare(l); got < 0.99 || got > 0.999 {
		t.Errorf("misalign share = %.4f, want ~0.998", got)
	}
	// Sequential+consecutive: nearly all accesses after the first.
	consec := posixTotals(l, darshan.CPosixConsecReads) + posixTotals(l, darshan.CPosixConsecWrites)
	ops := posixTotals(l, darshan.CPosixReads) + posixTotals(l, darshan.CPosixWrites)
	if float64(consec) < 0.99*float64(ops-8) {
		t.Errorf("consecutive = %d of %d ops", consec, ops)
	}
	// POSIX only: no MPI-IO module.
	if l.HasModule(darshan.ModMPIIO) {
		t.Error("ior-easy must not record MPI-IO")
	}
	// One shared record at rank -1.
	recs := l.Module(darshan.ModPOSIX).Records
	if len(recs) != 1 || recs[0].Rank != darshan.SharedRank {
		t.Errorf("expected one shared POSIX record, got %d records", len(recs))
	}
}

func TestIOREasy1MAligned(t *testing.T) {
	l := logFor(t, "ior-easy-1m-shared")
	if got := misalignShare(l); got != 0 {
		t.Errorf("1MB transfers on 1MB stripes must be aligned, got %.4f", got)
	}
	// Paper reports 8192 total I/O operations for this configuration.
	ops := posixTotals(l, darshan.CPosixReads) + posixTotals(l, darshan.CPosixWrites)
	if ops != 8192 {
		t.Errorf("total ops = %d, want 8192", ops)
	}
}

func TestIOREasyFPPExclusiveFiles(t *testing.T) {
	l := logFor(t, "ior-easy-1m-fpp")
	recs := l.Module(darshan.ModPOSIX).Records
	if len(recs) != 4 {
		t.Fatalf("expected 4 per-rank records, got %d", len(recs))
	}
	for _, r := range recs {
		if r.Rank == darshan.SharedRank {
			t.Error("file-per-process must not produce shared records")
		}
	}
}

func TestIORHardShape(t *testing.T) {
	l := logFor(t, "ior-hard")
	if got := smallShare(l); got < 0.99 {
		t.Errorf("small share = %.4f", got)
	}
	if got := misalignShare(l); got < 0.99 {
		t.Errorf("misalign share = %.4f, want ~1.0", got)
	}
	// Strided: no consecutive accesses at all.
	consec := posixTotals(l, darshan.CPosixConsecReads) + posixTotals(l, darshan.CPosixConsecWrites)
	if consec != 0 {
		t.Errorf("strided pattern must have no consecutive accesses, got %d", consec)
	}
	// But offsets increase per rank: sequential counters stay high
	// (this is the Darshan subtlety the knowledge base encodes).
	seq := posixTotals(l, darshan.CPosixSeqReads) + posixTotals(l, darshan.CPosixSeqWrites)
	if seq == 0 {
		t.Error("forward strided pattern should count as sequential in Darshan terms")
	}
}

func TestIORRandom4KShape(t *testing.T) {
	l := logFor(t, "ior-rnd4k")
	if got := misalignShare(l); got < 0.98 {
		t.Errorf("misalign share = %.4f, want ~0.996", got)
	}
	// Random: sequential share must be mediocre (~50%), unlike strided.
	seq := posixTotals(l, darshan.CPosixSeqReads) + posixTotals(l, darshan.CPosixSeqWrites)
	ops := posixTotals(l, darshan.CPosixReads) + posixTotals(l, darshan.CPosixWrites)
	if share := float64(seq) / float64(ops); share > 0.7 {
		t.Errorf("random workload too sequential: %.3f", share)
	}
}

func TestMDWorkbenchShape(t *testing.T) {
	l := logFor(t, "md-workbench")
	opens := posixTotals(l, darshan.CPosixOpens)
	stats := posixTotals(l, darshan.CPosixStats)
	dataOps := posixTotals(l, darshan.CPosixReads) + posixTotals(l, darshan.CPosixWrites)
	if opens+stats < dataOps {
		t.Errorf("metadata ops (%d) should rival data ops (%d)", opens+stats, dataOps)
	}
	// Many distinct files.
	if n := len(l.Module(darshan.ModPOSIX).Records); n < 200 {
		t.Errorf("expected hundreds of file records, got %d", n)
	}
}

func TestOpenPMDBaselineShape(t *testing.T) {
	l := logFor(t, "openpmd-baseline")
	if got := smallShare(l); got < 0.97 {
		t.Errorf("small share = %.4f, want ~0.99", got)
	}
	if got := misalignShare(l); got < 0.99 {
		t.Errorf("misalign share = %.4f, want ~1.0", got)
	}
	if !l.HasModule(darshan.ModMPIIO) {
		t.Fatal("openpmd uses MPI-IO")
	}
	var coll, indep int64
	for _, r := range l.Module(darshan.ModMPIIO).Records {
		coll += r.C(darshan.CMpiioCollWrites) + r.C(darshan.CMpiioCollReads)
		indep += r.C(darshan.CMpiioIndepWrites) + r.C(darshan.CMpiioIndepReads)
	}
	if coll != 0 {
		t.Errorf("HDF5 bug degrades collectives: expected 0 collective data ops, got %d", coll)
	}
	if indep == 0 {
		t.Error("expected independent MPI-IO data ops")
	}
	// Consecutive share high: the paper's aggregation-potential insight.
	consec := posixTotals(l, darshan.CPosixConsecReads) + posixTotals(l, darshan.CPosixConsecWrites)
	ops := posixTotals(l, darshan.CPosixReads) + posixTotals(l, darshan.CPosixWrites)
	if float64(consec)/float64(ops) < 0.9 {
		t.Errorf("consecutive share %.3f, want >0.9", float64(consec)/float64(ops))
	}
}

func TestOpenPMDOptimizedShape(t *testing.T) {
	l := logFor(t, "openpmd-optimized")
	if got := smallShare(l); got > 0.5 {
		t.Errorf("optimized small share = %.4f, want low", got)
	}
	var coll int64
	for _, r := range l.Module(darshan.ModMPIIO).Records {
		coll += r.C(darshan.CMpiioCollWrites)
	}
	if coll == 0 {
		t.Error("optimized variant must use collective writes")
	}
	// Aligned collective writes: misalignment low overall (reads may
	// stray but writes dominate).
	if got := misalignShare(l); got > 0.4 {
		t.Errorf("optimized misalign share = %.4f, want low", got)
	}
}

func TestE2EBaselineImbalance(t *testing.T) {
	l := logFor(t, "e2e-baseline")
	rec := sharedPosixRecord(t, l, e2eFile)
	slow := rec.C(darshan.CPosixSlowestBytes)
	fast := rec.C(darshan.CPosixFastestBytes)
	if slow == 0 {
		t.Fatal("slowest rank bytes missing")
	}
	imb := float64(slow-fast) / float64(slow)
	if imb < 0.99 {
		t.Errorf("load imbalance = %.4f, want ~0.999", imb)
	}
	if rec.C(darshan.CPosixSlowestRank) != 0 {
		t.Errorf("slowest rank should be 0, got %d", rec.C(darshan.CPosixSlowestRank))
	}
	if got := misalignShare(l); got < 0.99 {
		t.Errorf("misalign share = %.4f, want ~0.998", got)
	}
}

func TestE2EOptimizedSubsetImbalance(t *testing.T) {
	l := logFor(t, "e2e-optimized")
	// 64 aggregators issue ~98% of write operations: verify via DXT.
	perRank := map[int64]int{}
	total := 0
	for _, tr := range l.DXT {
		for _, ev := range tr.Events {
			if ev.Op == darshan.OpWrite {
				perRank[ev.Rank]++
				total++
			}
		}
	}
	// Count writes from the busiest 64 ranks.
	counts := make([]int, 0, len(perRank))
	for _, c := range perRank {
		counts = append(counts, c)
	}
	top := 0
	for i := 0; i < 64; i++ {
		best, bestIdx := -1, -1
		for j, c := range counts {
			if c > best {
				best, bestIdx = c, j
			}
		}
		top += best
		counts[bestIdx] = -1
	}
	share := float64(top) / float64(total)
	if share < 0.95 {
		t.Errorf("top-64 rank write share = %.4f, want ~0.98", share)
	}
	// No longer concentrated on rank 0 alone.
	if float64(perRank[0])/float64(total) > 0.5 {
		t.Error("optimized variant should not be rank-0 dominated")
	}
}

func sharedPosixRecord(t *testing.T, l *darshan.Log, file string) *darshan.Record {
	t.Helper()
	id := FileID(file)
	rec := l.Module(darshan.ModPOSIX).Find(id, darshan.SharedRank)
	if rec == nil {
		t.Fatalf("no shared POSIX record for %s", file)
	}
	return rec
}

func TestByName(t *testing.T) {
	if _, err := ByName("ior-hard"); err != nil {
		t.Errorf("ior-hard should exist: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestFigureSplits(t *testing.T) {
	f2, f3 := Figure2(), Figure3()
	if len(f2) != 6 || len(f3) != 4 {
		t.Fatalf("figure splits wrong: %d, %d", len(f2), len(f3))
	}
	if f2[0].Name != "ior-easy-2k-shared" || f3[0].Name != "openpmd-baseline" {
		t.Error("figure ordering wrong")
	}
}

func TestFileIDStable(t *testing.T) {
	a := FileID("/lustre/x")
	b := FileID("/lustre/x")
	c := FileID("/lustre/y")
	if a != b {
		t.Error("FileID not deterministic")
	}
	if a == c {
		t.Error("FileID collision on trivially different paths")
	}
	if a>>63 != 0 {
		t.Error("FileID must clear the top bit")
	}
}

func TestRecorderRoundTripThroughFormats(t *testing.T) {
	l := logFor(t, "ior-easy-2k-shared")
	dir := t.TempDir()
	path := dir + "/trace.darshan"
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := darshan.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalOps() != l.TotalOps() {
		t.Errorf("ops changed through container: %d vs %d", got.TotalOps(), l.TotalOps())
	}
	if len(got.DXT) != len(l.DXT) {
		t.Errorf("DXT traces changed: %d vs %d", len(got.DXT), len(l.DXT))
	}
}
