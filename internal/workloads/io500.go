package workloads

import (
	"fmt"
	"math/rand"

	"ion/internal/iosim"
	"ion/internal/issue"
)

// The IO500-derived workloads of Figure 2. All run 4 ranks through the
// POSIX interface, as in the paper's controlled setup, on a Lustre
// configuration with 1 MiB stripes and a 4 MiB RPC size.

const (
	ioEasyOpsPerRank = 1024 // writes per rank; same count of reads
	iorHardXfer      = 47008
	iorHardIters     = 1024
	rnd4kOpsPerRank  = 1024
)

// IOREasy models the ior-easy configuration: each rank streams
// sequential, consecutive transfers of the given size. With shared=true
// all ranks write disjoint segments of one file; otherwise each rank
// owns a file (file-per-process).
func IOREasy(transfer int64, shared bool) Workload {
	name := fmt.Sprintf("ior-easy-%s-%s", sizeName(transfer), layoutName(shared))
	title := fmt.Sprintf("IOR-Easy-%s-%s", sizeLabel(transfer), layoutLabel(shared))
	const ranks = 4

	truth := []issue.Expectation{
		Expect(issue.SmallIO, issue.VerdictMitigated,
			"small transfers, but sequential and consecutive: aggregatable into bulk RPCs"),
		Expect(issue.Interface, issue.VerdictDetected,
			"multiple ranks perform I/O through POSIX only; MPI-IO is never used"),
	}
	if transfer < 1<<20 {
		truth = append(truth, Expect(issue.MisalignedIO, issue.VerdictDetected,
			"2 KiB transfers land off the 1 MiB stripe boundary almost always"))
	}
	if shared {
		truth = append(truth, Expect(issue.SharedFile, issue.VerdictMitigated,
			"all ranks share one file, but segmented access never overlaps a stripe"))
	}

	return Workload{
		Name:  name,
		Title: title,
		Description: fmt.Sprintf(
			"ior-easy: %d ranks, %s sequential consecutive transfers, %s, POSIX",
			ranks, sizeLabel(transfer), layoutLabel(shared)),
		Exe:    fmt.Sprintf("ior -a POSIX -t %d -b %d -s 1", transfer, transfer*ioEasyOpsPerRank),
		NProcs: ranks,
		Truth:  truth,
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			var ops []iosim.Op
			segment := transfer * ioEasyOpsPerRank
			file := func(r int) string {
				if shared {
					return "/lustre/ior-easy/testfile"
				}
				return fmt.Sprintf("/lustre/ior-easy/testfile.%08d", r)
			}
			base := func(r int) int64 {
				if shared {
					return int64(r) * segment
				}
				return 0
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file(r), API: iosim.APIPOSIX})
			}
			// Write phase: sequential consecutive transfers.
			for r := 0; r < ranks; r++ {
				for i := int64(0); i < ioEasyOpsPerRank; i++ {
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: file(r),
						Offset: base(r) + i*transfer, Size: transfer,
						API: iosim.APIPOSIX, MemAligned: true,
					})
				}
			}
			// Read-back phase, equally sequential.
			for r := 0; r < ranks; r++ {
				for i := int64(0); i < ioEasyOpsPerRank; i++ {
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindRead, File: file(r),
						Offset: base(r) + i*transfer, Size: transfer,
						API: iosim.APIPOSIX, MemAligned: true,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file(r), API: iosim.APIPOSIX})
			}
			return ops
		},
	}
}

// IORHard models the ior-hard configuration: 47008-byte transfers in a
// globally interleaved (strided) layout on one shared file, so per-rank
// accesses are never consecutive, stripes interleave between ranks, and
// client-side aggregation cannot absorb the small requests.
func IORHard() Workload {
	const ranks = 4
	return Workload{
		Name:  "ior-hard",
		Title: "IOR-Hard",
		Description: fmt.Sprintf(
			"ior-hard: %d ranks, %d-byte interleaved strided transfers on one shared file, POSIX",
			ranks, iorHardXfer),
		Exe:    fmt.Sprintf("ior -a POSIX -t %d -s %d -w -r (hard)", iorHardXfer, iorHardIters),
		NProcs: ranks,
		Truth: []issue.Expectation{
			Expect(issue.SmallIO, issue.VerdictDetected,
				"small transfers with gaps between a rank's accesses: no aggregation possible"),
			Expect(issue.MisalignedIO, issue.VerdictDetected,
				"47008-byte units never align with the 1 MiB stripe boundary"),
			Expect(issue.RandomAccess, issue.VerdictDetected,
				"per-rank access is strided/non-contiguous, defeating readahead and write-back"),
			Expect(issue.SharedFile, issue.VerdictDetected,
				"rank-interleaved writes share stripes: extent-lock conflicts and temporal overlap"),
			Expect(issue.Interface, issue.VerdictDetected,
				"multiple ranks perform I/O through POSIX only; MPI-IO is never used"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			const file = "/lustre/ior-hard/IOR_file"
			var ops []iosim.Op
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file, API: iosim.APIPOSIX})
			}
			for r := 0; r < ranks; r++ {
				for i := int64(0); i < iorHardIters; i++ {
					off := (i*int64(ranks) + int64(r)) * iorHardXfer
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: file,
						Offset: off, Size: iorHardXfer,
						API: iosim.APIPOSIX, MemAligned: false,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				for i := int64(0); i < iorHardIters; i++ {
					off := (i*int64(ranks) + int64(r)) * iorHardXfer
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindRead, File: file,
						Offset: off, Size: iorHardXfer,
						API: iosim.APIPOSIX, MemAligned: false,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file, API: iosim.APIPOSIX})
			}
			return ops
		},
	}
}

// IORRandom4K models the ior-rnd4k configuration: uniform random 4 KiB
// reads and writes across one shared file.
func IORRandom4K() Workload {
	const ranks = 4
	return Workload{
		Name:  "ior-rnd4k",
		Title: "IOR-Random-4K-Shared-File",
		Description: fmt.Sprintf(
			"ior-rnd4k: %d ranks, random 4 KiB reads/writes on one shared file, POSIX", ranks),
		Exe:    "ior -a POSIX -t 4k -z -w -r (random)",
		NProcs: ranks,
		Truth: []issue.Expectation{
			Expect(issue.SmallIO, issue.VerdictDetected,
				"4 KiB requests with random placement: aggregation impossible"),
			Expect(issue.RandomAccess, issue.VerdictDetected,
				"uniform random offsets defeat readahead and write-back caching"),
			Expect(issue.MisalignedIO, issue.VerdictDetected,
				"random 4 KiB offsets rarely coincide with stripe boundaries"),
			Expect(issue.SharedFile, issue.VerdictDetected,
				"random writes from all ranks collide on stripes: lock contention"),
			Expect(issue.Interface, issue.VerdictDetected,
				"multiple ranks perform I/O through POSIX only; MPI-IO is never used"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			const file = "/lustre/ior-rnd4k/IOR_file"
			const xfer = 4096
			span := int64(ranks) * rnd4kOpsPerRank * xfer * 4
			rng := rand.New(rand.NewSource(20240708))
			var ops []iosim.Op
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file, API: iosim.APIPOSIX})
			}
			for i := 0; i < rnd4kOpsPerRank; i++ {
				for r := 0; r < ranks; r++ {
					kind := iosim.KindWrite
					if rng.Intn(2) == 0 {
						kind = iosim.KindRead
					}
					off := (rng.Int63n(span) / xfer) * xfer
					ops = append(ops, iosim.Op{
						Rank: r, Kind: kind, File: file,
						Offset: off, Size: xfer,
						API: iosim.APIPOSIX, MemAligned: true,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file, API: iosim.APIPOSIX})
			}
			return ops
		},
	}
}

// MDWorkbench models the md-workbench configuration: a metadata-bound
// loop that creates, writes, reads, stats, and closes many small
// per-rank files, always accessing offset zero with a tiny object.
func MDWorkbench() Workload {
	const (
		ranks      = 4
		filesPer   = 64
		iterations = 3
		objSize    = 3901
	)
	return Workload{
		Name:  "md-workbench",
		Title: "MD-Workbench",
		Description: fmt.Sprintf(
			"md-workbench: %d ranks × %d files × %d iterations of tiny same-offset I/O, POSIX",
			ranks, filesPer, iterations),
		Exe:    fmt.Sprintf("md-workbench -I %d -P %d -S %d", filesPer, iterations, objSize),
		NProcs: ranks,
		Truth: []issue.Expectation{
			Expect(issue.Metadata, issue.VerdictDetected,
				"opens/stats/closes dominate: heavy load on the metadata server"),
			Expect(issue.SmallIO, issue.VerdictDetected,
				"repeated ~4 KiB objects to many files: no aggregation across files"),
			Expect(issue.Interface, issue.VerdictDetected,
				"multiple ranks perform I/O through POSIX only; MPI-IO is never used"),
		},
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			var ops []iosim.Op
			file := func(r, f int) string {
				return fmt.Sprintf("/lustre/mdw/rank%d/obj.%04d", r, f)
			}
			for it := 0; it < iterations; it++ {
				for r := 0; r < ranks; r++ {
					for f := 0; f < filesPer; f++ {
						path := file(r, f)
						ops = append(ops,
							iosim.Op{Rank: r, Kind: iosim.KindOpen, File: path, API: iosim.APIPOSIX},
							iosim.Op{Rank: r, Kind: iosim.KindWrite, File: path, Offset: 0, Size: objSize, API: iosim.APIPOSIX, MemAligned: true},
							iosim.Op{Rank: r, Kind: iosim.KindClose, File: path, API: iosim.APIPOSIX},
							iosim.Op{Rank: r, Kind: iosim.KindOpen, File: path, API: iosim.APIPOSIX},
							iosim.Op{Rank: r, Kind: iosim.KindRead, File: path, Offset: 0, Size: objSize, API: iosim.APIPOSIX, MemAligned: true},
							iosim.Op{Rank: r, Kind: iosim.KindClose, File: path, API: iosim.APIPOSIX},
							iosim.Op{Rank: r, Kind: iosim.KindStat, File: path, API: iosim.APIPOSIX},
						)
					}
				}
			}
			return ops
		},
	}
}

func sizeName(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dm", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	}
	return fmt.Sprintf("%db", n)
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

func layoutName(shared bool) string {
	if shared {
		return "shared"
	}
	return "fpp"
}

func layoutLabel(shared bool) string {
	if shared {
		return "Shared-File"
	}
	return "File-per-process"
}
