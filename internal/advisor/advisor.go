// Package advisor turns a diagnosis into a ranked optimization plan: a
// catalog of concrete tuning actions (library calls, file-system
// commands, MPI-IO hints, restructuring patterns), each mapped to the
// issues it addresses, with prerequisites checked against the trace.
// Where the conclusions of ION explain what is wrong, the advisor
// enumerates exactly what to type — the "actionable tasks" dimension on
// which the paper compares diagnosis tools.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"ion/internal/analysis"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
)

// Effort grades how invasive an action is.
type Effort string

// Effort levels, from configuration-only to code restructuring.
const (
	EffortConfig  Effort = "config"  // environment / mount / job-script level
	EffortLibrary Effort = "library" // API parameter or hint changes
	EffortCode    Effort = "code"    // restructuring the application's I/O
)

// Action is one catalog entry.
type Action struct {
	ID     string
	Title  string
	Effort Effort
	// Addresses lists the issues the action helps with.
	Addresses []issue.ID
	// Detail explains the mechanism.
	Detail string
	// Command is the concrete invocation (shell, API, or hint).
	Command string
	// Applies decides whether the action makes sense for this trace;
	// nil means always applicable when an addressed issue fired.
	Applies func(*analysis.Env) bool
}

// Recommendation is one ranked plan entry.
type Recommendation struct {
	Action Action
	// Issues lists which detected/mitigated issues triggered it.
	Issues []issue.ID
	// Score orders the plan: detected issues outweigh mitigated ones,
	// and cheap actions outrank invasive ones at equal impact.
	Score float64
	// Rationale ties the action to the trace's numbers.
	Rationale string
}

// Plan is the advisor's output.
type Plan struct {
	Recommendations []Recommendation
	// Considered counts catalog entries evaluated.
	Considered int
}

// Render prints the plan as a numbered action list.
func (p *Plan) Render() string {
	var b strings.Builder
	if len(p.Recommendations) == 0 {
		b.WriteString("No optimization actions recommended: the trace shows no actionable issues.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "Optimization plan (%d actions, most impactful first)\n", len(p.Recommendations))
	b.WriteString(strings.Repeat("=", 60) + "\n")
	for i, r := range p.Recommendations {
		fmt.Fprintf(&b, "\n%d. %s  [%s effort]\n", i+1, r.Action.Title, r.Action.Effort)
		fmt.Fprintf(&b, "   addresses: %s\n", issueList(r.Issues))
		fmt.Fprintf(&b, "   why: %s\n", r.Rationale)
		fmt.Fprintf(&b, "   how: %s\n", r.Action.Detail)
		if r.Action.Command != "" {
			fmt.Fprintf(&b, "   do:  %s\n", r.Action.Command)
		}
	}
	return b.String()
}

func issueList(ids []issue.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

// Catalog returns the built-in action catalog.
func Catalog() []Action {
	return []Action{
		{
			ID: "collective-io", Title: "Route shared-file I/O through MPI-IO collectives",
			Effort:    EffortLibrary,
			Addresses: []issue.ID{issue.SmallIO, issue.SharedFile, issue.Interface, issue.RandomAccess},
			Detail:    "Collective buffering (two-phase I/O) funnels many ranks' small or strided requests through a few aggregator nodes that issue large, aligned writes.",
			Command:   "MPI_File_write_all / H5Pset_dxpl_mpio(..., H5FD_MPIO_COLLECTIVE); hints: romio_cb_write=enable",
		},
		{
			ID: "stripe-align", Title: "Align record sizes and offsets to the Lustre stripe unit",
			Effort:    EffortLibrary,
			Addresses: []issue.ID{issue.MisalignedIO},
			Detail:    "Stripe-aligned accesses touch one OST each and keep extent-lock ranges narrow; pad records or set the library alignment so offsets land on stripe boundaries.",
			Command:   "H5Pset_alignment(fapl, 0, stripe_size) or pad records to LUSTRE_STRIPE_SIZE",
		},
		{
			ID: "restripe-wide", Title: "Restripe the shared output file across more OSTs",
			Effort:    EffortConfig,
			Addresses: []issue.ID{issue.SharedFile},
			Detail:    "A wider stripe count spreads concurrent writers over more servers, cutting per-OST queueing and lock pressure.",
			Command:   "lfs setstripe -c -1 -S 1m <output-dir>",
			Applies: func(env *analysis.Env) bool {
				r, err := analysis.SharedFile(env)
				return err == nil && r.SharedFiles > 0
			},
		},
		{
			ID: "buffer-small", Title: "Buffer small requests into stripe-sized transfers",
			Effort:    EffortCode,
			Addresses: []issue.ID{issue.SmallIO},
			Detail:    "Accumulate output in a user-space buffer and flush in multiples of the stripe size, so every RPC carries a full payload.",
			Command:   "aggregate to >= LUSTRE_STRIPE_SIZE before write(); or setvbuf/larger HDF5 chunk cache",
		},
		{
			ID: "disable-fill", Title: "Disable fill values for overwritten datasets",
			Effort:    EffortLibrary,
			Addresses: []issue.ID{issue.LoadImbalance},
			Detail:    "netCDF/HDF5 pre-write fill values for every allocated block — usually from rank 0 — doubling the data volume for datasets that are fully overwritten anyway.",
			Command:   "nc_def_var_fill(ncid, varid, NC_NOFILL, NULL) / H5Pset_fill_time(dcpl, H5D_FILL_TIME_NEVER)",
			Applies: func(env *analysis.Env) bool {
				r, err := analysis.Imbalance(env)
				return err == nil && r.Pattern == "single-rank"
			},
		},
		{
			ID: "rebalance", Title: "Distribute I/O across ranks or explicit aggregators",
			Effort:    EffortCode,
			Addresses: []issue.ID{issue.LoadImbalance, issue.TimeImbalance},
			Detail:    "Split the output domain so every rank (or a deliberate aggregator subset sized to the stripe count) writes a comparable share.",
			Command:   "domain-decompose writes; or set cb_nodes=<stripe count> and use collectives",
		},
		{
			ID: "keep-open", Title: "Keep file handles open across iterations",
			Effort:    EffortCode,
			Addresses: []issue.ID{issue.Metadata},
			Detail:    "Opening and closing around every access turns each iteration into metadata-server round trips; open once, I/O many times, close once.",
			Command:   "hoist open()/close() out of the iteration loop",
		},
		{
			ID: "pack-files", Title: "Pack many small files into a shared container",
			Effort:    EffortCode,
			Addresses: []issue.ID{issue.Metadata},
			Detail:    "Thousands of per-rank object files multiply MDS load; a container format (HDF5, ADIOS BP, tar) turns file churn into offset arithmetic.",
			Command:   "one HDF5 file with per-rank groups instead of per-object files",
			Applies: func(env *analysis.Env) bool {
				return analysis.FileCount(env) > 64
			},
		},
		{
			ID: "adopt-mpiio", Title: "Adopt MPI-IO (directly or via HDF5/PnetCDF)",
			Effort:    EffortLibrary,
			Addresses: []issue.ID{issue.Interface},
			Detail:    "Raw POSIX from many ranks leaves collective buffering, data sieving, and hint-based tuning on the table; the parallel libraries add them without changing the data model.",
			Command:   "link MPI-IO and replace write() with MPI_File_write_at_all (or move to HDF5 parallel)",
		},
		{
			ID: "force-collective", Title: "Force collective mode / upgrade the I/O library",
			Effort:    EffortConfig,
			Addresses: []issue.ID{issue.CollectiveIO},
			Detail:    "Collective opens that degrade into independent small accesses indicate a library defect (e.g. the HDF5 collective-metadata bug) or disabled two-phase I/O.",
			Command:   "export ROMIO_HINTS: romio_cb_write=enable romio_ds_write=enable; upgrade HDF5 >= 1.10.x fix",
		},
		{
			ID: "sort-accesses", Title: "Sort or batch non-contiguous accesses before issuing",
			Effort:    EffortCode,
			Addresses: []issue.ID{issue.RandomAccess},
			Detail:    "Sorting requests by offset (or building an MPI datatype describing the full pattern) converts random streams into sequential ones the servers can service cheaply.",
			Command:   "sort offsets per batch; or MPI_Type_create_hindexed + one collective call",
		},
		{
			ID: "readahead-hint", Title: "Tune client readahead for the access pattern",
			Effort:    EffortConfig,
			Addresses: []issue.ID{issue.RandomAccess},
			Detail:    "Random reads thrash default readahead; shrinking it avoids wasted prefetch, while genuinely sequential phases want it large.",
			Command:   "lctl set_param llite.*.max_read_ahead_mb=<size>",
		},
	}
}

// Recommend builds the ranked plan for a report against its trace.
func Recommend(rep *ion.Report, out *extractor.Output) (*Plan, error) {
	if rep == nil || out == nil {
		return nil, fmt.Errorf("advisor: report and extraction are required")
	}
	env := analysis.NewEnv(out, knowledge.FromExtract(out))
	weight := map[issue.Verdict]float64{
		issue.VerdictDetected:  1.0,
		issue.VerdictMitigated: 0.25,
	}
	effortBonus := map[Effort]float64{
		EffortConfig:  0.20,
		EffortLibrary: 0.10,
		EffortCode:    0.0,
	}
	plan := &Plan{}
	for _, a := range Catalog() {
		plan.Considered++
		var score float64
		var hit []issue.ID
		var worst issue.Verdict = issue.VerdictNotDetected
		for _, id := range a.Addresses {
			v := rep.Verdict(id)
			if w := weight[v]; w > 0 {
				score += w
				hit = append(hit, id)
				if v == issue.VerdictDetected {
					worst = issue.VerdictDetected
				} else if worst != issue.VerdictDetected {
					worst = issue.VerdictMitigated
				}
			}
		}
		if len(hit) == 0 || worst != issue.VerdictDetected {
			continue // only plan actions for confirmed problems
		}
		if a.Applies != nil && !a.Applies(env) {
			continue
		}
		score += effortBonus[a.Effort]
		plan.Recommendations = append(plan.Recommendations, Recommendation{
			Action:    a,
			Issues:    hit,
			Score:     score,
			Rationale: rationale(rep, hit),
		})
	}
	sort.SliceStable(plan.Recommendations, func(i, j int) bool {
		if plan.Recommendations[i].Score != plan.Recommendations[j].Score {
			return plan.Recommendations[i].Score > plan.Recommendations[j].Score
		}
		return plan.Recommendations[i].Action.ID < plan.Recommendations[j].Action.ID
	})
	return plan, nil
}

// rationale quotes the first sentence of the strongest diagnosis.
func rationale(rep *ion.Report, ids []issue.ID) string {
	for _, id := range ids {
		if rep.Verdict(id) != issue.VerdictDetected {
			continue
		}
		if d := rep.Diagnoses[id]; d != nil {
			return firstSentence(d.Conclusion)
		}
	}
	for _, id := range ids {
		if d := rep.Diagnoses[id]; d != nil {
			return firstSentence(d.Conclusion)
		}
	}
	return "addresses issues present in the trace"
}

func firstSentence(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	for i := 0; i < len(s); i++ {
		if s[i] == '.' && (i+1 == len(s) || s[i+1] == ' ') {
			return s[:i+1]
		}
		if s[i] == ';' {
			return s[:i]
		}
	}
	return s
}
