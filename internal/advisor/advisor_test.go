package advisor

import (
	"context"
	"strings"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/testutil"
)

func planFor(t *testing.T, name string) (*Plan, *ion.Report) {
	t.Helper()
	out, _, err := testutil.Extracted(name)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Recommend(rep, out)
	if err != nil {
		t.Fatal(err)
	}
	return plan, rep
}

func TestCatalogSanity(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Catalog() {
		if a.ID == "" || a.Title == "" || a.Detail == "" {
			t.Errorf("incomplete action %+v", a)
		}
		if seen[a.ID] {
			t.Errorf("duplicate action id %s", a.ID)
		}
		seen[a.ID] = true
		if len(a.Addresses) == 0 {
			t.Errorf("%s addresses nothing", a.ID)
		}
		for _, id := range a.Addresses {
			if !issue.Valid(id) {
				t.Errorf("%s addresses unknown issue %q", a.ID, id)
			}
		}
		switch a.Effort {
		case EffortConfig, EffortLibrary, EffortCode:
		default:
			t.Errorf("%s has invalid effort %q", a.ID, a.Effort)
		}
	}
	if len(seen) < 10 {
		t.Errorf("catalog too small: %d actions", len(seen))
	}
	// Every issue type has at least one action.
	for _, id := range issue.All {
		covered := false
		for _, a := range Catalog() {
			for _, aid := range a.Addresses {
				if aid == id {
					covered = true
				}
			}
		}
		if !covered {
			t.Errorf("no catalog action addresses %s", id)
		}
	}
}

func TestPlanForIORHard(t *testing.T) {
	plan, _ := planFor(t, "ior-hard")
	if len(plan.Recommendations) == 0 {
		t.Fatal("no recommendations for the pathological workload")
	}
	// The collective-I/O route addresses four of ior-hard's five issues:
	// it must rank first.
	if plan.Recommendations[0].Action.ID != "collective-io" {
		t.Errorf("top action = %s, want collective-io", plan.Recommendations[0].Action.ID)
	}
	ids := map[string]bool{}
	for _, r := range plan.Recommendations {
		ids[r.Action.ID] = true
		if r.Rationale == "" {
			t.Errorf("%s has no rationale", r.Action.ID)
		}
		if r.Score <= 0 {
			t.Errorf("%s has non-positive score", r.Action.ID)
		}
	}
	for _, want := range []string{"stripe-align", "restripe-wide", "adopt-mpiio", "sort-accesses"} {
		if !ids[want] {
			t.Errorf("plan misses %s", want)
		}
	}
	// Scores descend.
	for i := 1; i < len(plan.Recommendations); i++ {
		if plan.Recommendations[i].Score > plan.Recommendations[i-1].Score {
			t.Fatal("plan not sorted by score")
		}
	}
}

func TestFillValueActionTargetsE2E(t *testing.T) {
	plan, _ := planFor(t, "e2e-baseline")
	found := false
	for _, r := range plan.Recommendations {
		if r.Action.ID == "disable-fill" {
			found = true
			if !strings.Contains(r.Rationale, "rank 0") {
				t.Errorf("fill-value rationale should cite rank 0: %s", r.Rationale)
			}
		}
	}
	if !found {
		t.Error("disable-fill not recommended for the single-rank fill pathology")
	}
	// And NOT for the subset-balanced optimized run (imbalance only
	// mitigated there).
	planOpt, _ := planFor(t, "e2e-optimized")
	for _, r := range planOpt.Recommendations {
		if r.Action.ID == "disable-fill" {
			t.Error("disable-fill recommended without a single-rank pathology")
		}
	}
}

func TestMetadataActionsForMDWorkbench(t *testing.T) {
	plan, _ := planFor(t, "md-workbench")
	var keepOpen, pack bool
	for _, r := range plan.Recommendations {
		switch r.Action.ID {
		case "keep-open":
			keepOpen = true
		case "pack-files":
			pack = true
		}
	}
	if !keepOpen || !pack {
		t.Errorf("metadata actions missing: keep-open=%v pack-files=%v", keepOpen, pack)
	}
}

func TestCleanTraceGetsNoDetectedPlan(t *testing.T) {
	// openpmd-optimized has only mitigated findings: the plan must not
	// prescribe actions for a healthy run.
	plan, rep := planFor(t, "openpmd-optimized")
	if len(rep.Detected()) != 0 {
		t.Skip("workload unexpectedly has detected issues")
	}
	if len(plan.Recommendations) != 0 {
		t.Errorf("plan for a clean trace: %+v", plan.Recommendations)
	}
	if !strings.Contains(plan.Render(), "No optimization actions") {
		t.Error("empty plan rendering wrong")
	}
}

func TestRenderShape(t *testing.T) {
	plan, _ := planFor(t, "ior-hard")
	text := plan.Render()
	for _, want := range []string{"Optimization plan", "addresses:", "why:", "how:", "do:"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(nil, &extractor.Output{}); err == nil {
		t.Error("nil report accepted")
	}
}
