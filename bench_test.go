// Package repro holds the top-level benchmark harness: one benchmark
// per evaluation artifact (Figure 2, Figure 3, the §2 threshold
// pitfall), per-stage pipeline benchmarks (simulator, recorder, log
// formats, extractor, prompts, completions), and the ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ion/internal/advisor"
	"ion/internal/consistency"
	"ion/internal/darshan"
	"ion/internal/drishti"
	"ion/internal/dxtexplore"
	"ion/internal/eval"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/iosim"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/prompt"
	"ion/internal/rag"
	"ion/internal/semcache"
	"ion/internal/testutil"
	"ion/internal/workloads"
)

// BenchmarkFigure2 regenerates each Figure 2 row: the full ION pipeline
// (extract → 9 parallel diagnoses) over the IO500-derived traces, with
// the verdict-accuracy score reported as a metric.
func BenchmarkFigure2(b *testing.B) {
	for _, w := range workloads.Figure2() {
		w := w
		b.Run(w.Title, func(b *testing.B) {
			benchWorkloadION(b, w)
		})
	}
}

// BenchmarkFigure3 regenerates each Figure 3 row: ION and Drishti on
// the application traces.
func BenchmarkFigure3(b *testing.B) {
	for _, w := range workloads.Figure3() {
		w := w
		b.Run(w.Title, func(b *testing.B) {
			benchWorkloadION(b, w)
		})
	}
}

func benchWorkloadION(b *testing.B, w workloads.Workload) {
	log, err := testutil.Log(w.Name)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	var matched, expected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fw.AnalyzeLog(context.Background(), log, w.Name, filepath.Join(dir, fmt.Sprint(i%4)))
		if err != nil {
			b.Fatal(err)
		}
		s := eval.ScoreION(w, rep)
		matched, expected = s.Matched, s.Expected
	}
	b.ReportMetric(float64(matched), "verdicts-matched")
	b.ReportMetric(float64(expected), "verdicts-expected")
}

// BenchmarkDrishtiBaseline times the trigger engine on each Figure 3
// trace, with its ground-truth accuracy as a metric.
func BenchmarkDrishtiBaseline(b *testing.B) {
	for _, w := range workloads.Figure3() {
		w := w
		b.Run(w.Title, func(b *testing.B) {
			out, _, err := testutil.Extracted(w.Name)
			if err != nil {
				b.Fatal(err)
			}
			var matched int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := drishti.Analyze(out, drishti.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				matched = eval.ScoreDrishti(w, rep).Matched
			}
			b.ReportMetric(float64(matched), "flags-matched")
		})
	}
}

// BenchmarkThresholdPitfall reproduces the §2 sweep: Drishti across
// small-request thresholds on the boundary workload, reporting how
// often the fixed threshold disagrees with ground truth.
func BenchmarkThresholdPitfall(b *testing.B) {
	out, _, err := testutil.Extracted("ior-easy-2k-shared")
	if err != nil {
		b.Fatal(err)
	}
	thresholds := []int64{256 << 10, 1 << 20, 4 << 20}
	var wrong int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrong = 0
		for _, th := range thresholds {
			cfg := drishti.DefaultConfig()
			cfg.SmallRequestSize = th
			rep, err := drishti.Analyze(out, cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Ground truth: mitigated — a correct binary tool stays silent.
			if rep.Flagged(issue.SmallIO) {
				wrong++
			}
		}
	}
	b.ReportMetric(float64(wrong), "wrong-thresholds")
}

// --- pipeline stage benchmarks ---

// BenchmarkIosim measures simulator throughput on the ior-hard op
// stream (shared-file contention, the heaviest code path).
func BenchmarkIosim(b *testing.B) {
	w := workloads.IORHard()
	ops := w.Ops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := iosim.New(w.Config())
		if _, err := sim.Run(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ops)), "ops/run")
}

// BenchmarkRecorder measures trace recording (ops -> Darshan counters).
func BenchmarkRecorder(b *testing.B) {
	w := workloads.IORHard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogFormats measures serialization of the binary container
// and the darshan-parser text format.
func BenchmarkLogFormats(b *testing.B) {
	log, err := testutil.Log("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := log.WriteBinary(&buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	var bin bytes.Buffer
	if err := log.WriteBinary(&bin); err != nil {
		b.Fatal(err)
	}
	b.Run("binary-read", func(b *testing.B) {
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := darshan.ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := log.WriteText(&buf); err != nil {
				b.Fatal(err)
			}
			if err := log.WriteDXTText(&buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	var txt bytes.Buffer
	if err := log.WriteText(&txt); err != nil {
		b.Fatal(err)
	}
	if err := log.WriteDXTText(&txt); err != nil {
		b.Fatal(err)
	}
	b.Run("text-parse", func(b *testing.B) {
		b.SetBytes(int64(txt.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := darshan.ParseText(bytes.NewReader(txt.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractor measures log → CSV extraction.
func BenchmarkExtractor(b *testing.B) {
	log, err := testutil.Log("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extractor.Extract(log); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("to-disk", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if _, err := extractor.ExtractToDir(log, filepath.Join(dir, fmt.Sprint(i%8))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPromptBuild measures per-issue prompt construction, with the
// prompt size in tokens as a metric.
func BenchmarkPromptBuild(b *testing.B) {
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	builder := prompt.NewBuilder(kb)
	var tokens int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := builder.Diagnosis(issue.SmallIO, out)
		if err != nil {
			b.Fatal(err)
		}
		tokens = llm.PromptTokens(req)
	}
	b.ReportMetric(float64(tokens), "prompt-tokens")
}

// BenchmarkExpertCompletion measures a single diagnosis completion
// (prompt → simulated expert → steps/code/conclusion).
func BenchmarkExpertCompletion(b *testing.B) {
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		b.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	req, err := prompt.NewBuilder(kb).Diagnosis(issue.SharedFile, out)
	if err != nil {
		b.Fatal(err)
	}
	client := expertsim.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeEndToEnd measures the complete Analyzer (all issues,
// parallel fan-out, summary) on an already-extracted trace.
func BenchmarkAnalyzeEndToEnd(b *testing.B) {
	out, _, err := testutil.Extracted("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.AnalyzeExtracted(context.Background(), out, "e2e"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInteractive measures one Q&A turn against a diagnosis.
func BenchmarkInteractive(b *testing.B) {
	out, _, err := testutil.Extracted("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	client := expertsim.New()
	fw, err := ion.New(ion.Config{Client: client, SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "e2e")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := ion.NewSession(client, rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Ask(context.Background(), "which rank causes the imbalance?"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ---

// BenchmarkPromptStrategy contrasts the paper's divide-and-conquer
// prompting with the rejected monolithic design: the metric is tokens
// per completion request the model must digest.
func BenchmarkPromptStrategy(b *testing.B) {
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	builder := prompt.NewBuilder(kb)

	b.Run("divide-and-conquer", func(b *testing.B) {
		var maxTokens int
		for i := 0; i < b.N; i++ {
			maxTokens = 0
			for _, id := range kb.Issues() {
				req, err := builder.Diagnosis(id, out)
				if err != nil {
					b.Fatal(err)
				}
				if t := llm.PromptTokens(req); t > maxTokens {
					maxTokens = t
				}
			}
		}
		b.ReportMetric(float64(maxTokens), "max-tokens-per-request")
	})
	b.Run("monolithic", func(b *testing.B) {
		var tokens int
		for i := 0; i < b.N; i++ {
			// One voluminous prompt: every context and every column
			// description in a single request.
			var total int
			for _, id := range kb.Issues() {
				req, err := builder.Diagnosis(id, out)
				if err != nil {
					b.Fatal(err)
				}
				total += llm.PromptTokens(req)
			}
			tokens = total
		}
		b.ReportMetric(float64(tokens), "max-tokens-per-request")
	})
}

// BenchmarkModuleFiltering quantifies the per-issue module map: prompt
// tokens with the filter versus describing every module table.
func BenchmarkModuleFiltering(b *testing.B) {
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	builder := prompt.NewBuilder(kb)
	b.Run("filtered", func(b *testing.B) {
		var tokens int
		for i := 0; i < b.N; i++ {
			req, err := builder.Diagnosis(issue.Metadata, out)
			if err != nil {
				b.Fatal(err)
			}
			tokens = llm.PromptTokens(req)
		}
		b.ReportMetric(float64(tokens), "prompt-tokens")
	})
	b.Run("unfiltered-bound", func(b *testing.B) {
		// The DXT-heavy issue approximates "describe everything".
		var tokens int
		for i := 0; i < b.N; i++ {
			req, err := builder.Diagnosis(issue.SmallIO, out)
			if err != nil {
				b.Fatal(err)
			}
			tokens = llm.PromptTokens(req)
		}
		b.ReportMetric(float64(tokens), "prompt-tokens")
	})
}

// BenchmarkParallelFanout contrasts sequential and parallel per-issue
// prompting (the paper sends all prompts in parallel).
func BenchmarkParallelFanout(b *testing.B) {
	out, _, err := testutil.Extracted("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	for _, parallel := range []int{1, 3, 9} {
		parallel := parallel
		b.Run(fmt.Sprintf("parallel-%d", parallel), func(b *testing.B) {
			fw, err := ion.New(ion.Config{Client: expertsim.New(), Parallel: parallel, SkipSummary: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fw.AnalyzeExtracted(context.Background(), out, "e2e"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregationAblation runs the same small-write stream with
// client-side aggregation on and off: the simulated makespan gap is the
// physical fact ION's small-I/O context encodes (sequential small I/O
// is mitigated; disable aggregation and it is not).
func BenchmarkAggregationAblation(b *testing.B) {
	mkOps := func() []iosim.Op {
		var ops []iosim.Op
		for i := 0; i < 4096; i++ {
			ops = append(ops, iosim.Op{
				Rank: 0, Kind: iosim.KindWrite, File: "/lustre/f",
				Offset: int64(i) * 4096, Size: 4096, MemAligned: true,
			})
		}
		return ops
	}
	for _, agg := range []bool{true, false} {
		agg := agg
		name := "aggregation-on"
		if !agg {
			name = "aggregation-off"
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				cfg := iosim.ExampleConfig()
				cfg.Aggregation = agg
				cfg.CollectiveBuffering = agg
				sim := iosim.New(cfg)
				if _, err := sim.Run(mkOps()); err != nil {
					b.Fatal(err)
				}
				makespan = sim.Stats().Makespan
			}
			b.ReportMetric(makespan*1e3, "simulated-ms")
		})
	}
}

// TestMain keeps the benchmark temp space tidy.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// --- extension benchmarks ---

// BenchmarkConsistencyCheck measures the verification pass over a full
// diagnosis (the §5 consistency-checking extension).
func BenchmarkConsistencyCheck(b *testing.B) {
	out, _, err := testutil.Extracted("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "e2e")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := consistency.Check(rep, out)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent() {
			b.Fatal("expert report inconsistent")
		}
	}
}

// BenchmarkRAGRetrieval measures index construction plus one retrieval
// (the §5 RAG extension), reporting the context-size reduction versus
// resending the full report.
func BenchmarkRAGRetrieval(b *testing.B) {
	out, _, err := testutil.Extracted("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "e2e")
	if err != nil {
		b.Fatal(err)
	}
	kb := knowledge.NewBase(knowledge.FromExtract(out))
	full := len(rep.ContextText())
	var retrieved int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		provider, err := rag.ContextProvider(rep, kb, 4)
		if err != nil {
			b.Fatal(err)
		}
		retrieved = len(provider("which rank causes the write imbalance?"))
	}
	b.ReportMetric(float64(full), "full-context-bytes")
	b.ReportMetric(float64(retrieved), "retrieved-context-bytes")
}

// BenchmarkAdvisor measures optimization-plan construction.
func BenchmarkAdvisor(b *testing.B) {
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		b.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "ior-hard")
	if err != nil {
		b.Fatal(err)
	}
	var actions int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := advisor.Recommend(rep, out)
		if err != nil {
			b.Fatal(err)
		}
		actions = len(plan.Recommendations)
	}
	b.ReportMetric(float64(actions), "actions")
}

// BenchmarkDXTExplore measures the visualization pipeline on the
// largest trace (1024 ranks).
func BenchmarkDXTExplore(b *testing.B) {
	log, err := testutil.Log("e2e-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := dxtexplore.Explore(log, dxtexplore.Options{Width: 80, MaxRows: 16})
		if len(out) == 0 {
			b.Fatal("empty visualization")
		}
	}
}

// BenchmarkTransferSweep regenerates the transfer-size sweep: verdict
// flips tracked against the simulated performance across sizes.
func BenchmarkTransferSweep(b *testing.B) {
	r := &eval.Runner{Client: expertsim.New(), SkipSummary: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.TransferSweep(context.Background(),
			[]int64{2 << 10, 1 << 20, 8 << 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeTrace exercises the pipeline at scale: a 256-rank
// interleaved workload with ~130k DXT events through generation,
// extraction, and the full diagnosis.
func BenchmarkLargeTrace(b *testing.B) {
	const ranks, perRank = 256, 256
	w := workloads.Workload{
		Name: "large", Title: "Large", Exe: "./large", NProcs: ranks,
		Config: iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			var ops []iosim.Op
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: "/lustre/large"})
			}
			for i := 0; i < perRank; i++ {
				for r := 0; r < ranks; r++ {
					off := int64(i*ranks+r) * 65536
					ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindWrite, File: "/lustre/large",
						Offset: off, Size: 65536, MemAligned: true})
				}
			}
			return ops
		},
	}
	log, err := w.Generate()
	if err != nil {
		b.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fw.AnalyzeLog(context.Background(), log, "large", filepath.Join(dir, fmt.Sprint(i%2)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Diagnoses) != 9 {
			b.Fatal("incomplete diagnosis")
		}
	}
	b.ReportMetric(float64(log.TotalOps()), "trace-ops")
}

// BenchmarkSemcacheLookup measures one semantic-cache nearest-neighbor
// lookup against a 10k-entry store: the linear cosine scan over
// quantized signatures that every job submission pays before deciding
// whether to reuse, condition, or run cold.
func BenchmarkSemcacheLookup(b *testing.B) {
	const entries = 10_000
	store, err := semcache.Open(semcache.Options{
		Path:       filepath.Join(b.TempDir(), "semcache.jsonl"),
		MaxEntries: -1,
		MaxBytes:   -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	dims := len(semcache.Dimensions())
	for i := 0; i < entries; i++ {
		sig := make(semcache.Signature, dims)
		for d := range sig {
			// Deterministic spread across the unit cube so neighbors are
			// realistic: no near-duplicates, no degenerate zero vectors.
			sig[d] = float64((i*31+d*17)%97) / 96
		}
		err := store.Put(semcache.Entry{
			JobID:     fmt.Sprintf("j-%012d", i),
			TraceHash: fmt.Sprintf("h-%d", i),
			Trace:     "bench",
			Signature: sig,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	query := semcache.Extract(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := store.Lookup(query); !ok {
			b.Fatal("lookup found no neighbor in a populated store")
		}
	}
	b.ReportMetric(entries, "entries")
}

// BenchmarkSignatureExtract measures projecting an extracted trace into
// its feature vector — the per-submission cost of semantic indexing.
func BenchmarkSignatureExtract(b *testing.B) {
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sig := semcache.Extract(out); len(sig) == 0 {
			b.Fatal("empty signature")
		}
	}
}

// BenchmarkParseTextLarge parses a synthetic trace of over a million
// counter lines, reporting throughput in MB/s. This is the sustained-
// ingestion number: per-record setup costs are amortized away and the
// per-line byte-scanning path dominates.
func BenchmarkParseTextLarge(b *testing.B) {
	const nfiles = 16000
	l := darshan.NewLog()
	l.Header.Exe = "large ./in"
	l.Header.NProcs = 64
	l.Mounts = append(l.Mounts, darshan.Mount{Point: "/lustre", FSType: "lustre"})
	counters := darshan.CountersFor(darshan.ModPOSIX)
	fcounters := darshan.FCountersFor(darshan.ModPOSIX)
	for i := 0; i < nfiles; i++ {
		id := uint64(1 + i)
		l.Names[id] = fmt.Sprintf("/lustre/data/file-%d", i)
		r := l.Module(darshan.ModPOSIX).Record(id, int64(i%64))
		for k, c := range counters {
			r.Counters[c] = int64(k * i)
		}
		for k, c := range fcounters {
			r.FCounters[c] = float64(k) * 0.25
		}
	}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		b.Fatal(err)
	}
	text := buf.Bytes()
	if lines := bytes.Count(text, []byte("\n")); lines < 1_000_000 {
		b.Fatalf("synthetic trace has %d lines, want >= 1M", lines)
	}
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := darshan.ParseText(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
