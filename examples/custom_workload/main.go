// custom_workload: define your own application I/O pattern, execute it
// on the parallel-file-system simulator, and diagnose the resulting
// Darshan trace — the path a user takes to study a planned I/O design
// before writing the application.
//
// The example models a checkpoint writer with a deliberate flaw: every
// rank appends 64 KiB records to one shared file at rank-interleaved
// offsets (a classic "everyone appends" design).
//
//	go run ./examples/custom_workload
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/advisor"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/iosim"
	"ion/internal/report"
	"ion/internal/workloads"
)

func main() {
	const (
		ranks   = 8
		records = 256
		recSize = 64 << 10
		file    = "/lustre/ckpt/checkpoint.dat"
	)

	// 1. Describe the workload as an operation stream.
	w := workloads.Workload{
		Name:        "naive-checkpoint",
		Title:       "Naive interleaved checkpoint",
		Description: "8 ranks interleave 64 KiB records into one shared checkpoint file",
		Exe:         "./ckpt-writer (naive design)",
		NProcs:      ranks,
		Config:      iosim.ExampleConfig,
		Ops: func() []iosim.Op {
			var ops []iosim.Op
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindOpen, File: file})
			}
			for i := 0; i < records; i++ {
				for r := 0; r < ranks; r++ {
					off := int64(i*ranks+r) * recSize
					ops = append(ops, iosim.Op{
						Rank: r, Kind: iosim.KindWrite, File: file,
						Offset: off, Size: recSize, MemAligned: true,
					})
				}
			}
			for r := 0; r < ranks; r++ {
				ops = append(ops, iosim.Op{Rank: r, Kind: iosim.KindClose, File: file})
			}
			return ops
		},
	}

	// 2. Execute it and record the Darshan trace.
	trace, stats, err := w.GenerateWithStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d ops in %.4fs of I/O time, %d lock conflicts\n\n",
		stats.TotalOps, stats.Makespan, stats.LockConflicts)

	// 3. Diagnose and plan fixes.
	dir, err := os.MkdirTemp("", "ion-custom-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	workDir := filepath.Join(dir, "csv")
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), trace, w.Title, workDir)
	if err != nil {
		log.Fatal(err)
	}
	opts := report.DefaultOptions()
	opts.ShowSteps = false
	if err := report.WriteReport(os.Stdout, rep, opts); err != nil {
		log.Fatal(err)
	}

	out, err := extractor.LoadDir(workDir)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := advisor.Recommend(rep, out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(plan.Render())
}
