// compare_drishti: the paper's Figure 3 scenario on one trace — run
// both ION and the reimplemented Drishti baseline over the OpenPMD
// application trace (HDF5 collective-I/O bug) and print their outputs
// side by side, issue by issue.
//
//	go run ./examples/compare_drishti            # baseline (buggy) trace
//	go run ./examples/compare_drishti -optimized # fixed trace
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/drishti"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/report"
	"ion/internal/workloads"
)

func main() {
	optimized := flag.Bool("optimized", false, "analyze the fixed (optimized) trace")
	flag.Parse()

	w := workloads.OpenPMD(*optimized)
	fmt.Printf("workload: %s — %s\n\n", w.Title, w.Description)
	trace, err := w.Generate()
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "ion-compare-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	workDir := filepath.Join(dir, "csv")

	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		log.Fatal(err)
	}
	ionRep, err := fw.AnalyzeLog(context.Background(), trace, w.Title, workDir)
	if err != nil {
		log.Fatal(err)
	}

	out, err := extractor.LoadDir(workDir)
	if err != nil {
		log.Fatal(err)
	}
	drishtiRep, err := drishti.Analyze(out, drishti.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	if err := report.WriteComparison(os.Stdout, ionRep, drishtiRep, report.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
}
