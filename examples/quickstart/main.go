// Quickstart: generate a Darshan trace with a known I/O pathology, run
// the full ION pipeline over it (extract → per-issue diagnosis →
// summary), and print the expert report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/report"
	"ion/internal/workloads"
)

func main() {
	// 1. Produce a trace. In production this file comes from a Darshan
	// deployment; here the ior-hard workload (small strided writes on a
	// shared file) runs on the bundled parallel-file-system simulator.
	w, err := workloads.ByName("ior-hard")
	if err != nil {
		log.Fatal(err)
	}
	trace, err := w.Generate()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ion-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "ior-hard.darshan")
	if err := trace.WriteFile(logPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d ranks, %d I/O operations)\n\n", logPath, trace.Header.NProcs, trace.TotalOps())

	// 2. Analyze it. The expertsim backend is the bundled offline
	// expert model; swap in llm.NewOpenAI(...) for a live endpoint.
	fw, err := ion.New(ion.Config{Client: expertsim.New()})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.AnalyzeFile(context.Background(), logPath, filepath.Join(dir, "csv"))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Print the diagnosis.
	if err := report.WriteReport(os.Stdout, rep, report.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
}
