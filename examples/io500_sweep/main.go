// io500_sweep: run ION over every IO500-derived controlled workload
// (the paper's Figure 2 set) and print, per workload, the verdicts
// against the injected ground truth — a compact regression sweep for
// the diagnosis quality.
//
//	go run ./examples/io500_sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "ion-sweep-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-20s %-12s %-12s %s\n", "workload", "issue", "verdict", "expected", "")
	for _, w := range workloads.Figure2() {
		trace, err := w.Generate()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fw.AnalyzeLog(context.Background(), trace, w.Name, filepath.Join(dir, w.Name))
		if err != nil {
			log.Fatal(err)
		}
		want := map[issue.ID]issue.Verdict{}
		for _, e := range w.Truth {
			want[e.Issue] = e.Want
		}
		for _, id := range rep.Order {
			got := rep.Verdict(id)
			exp, listed := want[id]
			if !listed && got == issue.VerdictNotDetected {
				continue // keep the sweep output compact
			}
			mark := "ok"
			switch {
			case listed && got != exp:
				mark = "MISMATCH"
			case !listed && got == issue.VerdictDetected:
				mark = "FALSE-POSITIVE"
			case !listed:
				mark = "(context note)"
			}
			expStr := "-"
			if listed {
				expStr = string(exp)
			}
			fmt.Printf("%-22s %-20s %-12s %-12s %s\n", w.Name, id, got, expStr, mark)
		}
	}
}
