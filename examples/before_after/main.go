// before_after: the paper's baseline-vs-optimized evaluation flow as a
// user workflow — diagnose both E2E traces (with and without the
// fill-value bug) and diff the diagnoses to see exactly what the fix
// bought and what remains open.
//
//	go run ./examples/before_after
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/diffreport"
	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "ion-diff-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		log.Fatal(err)
	}

	diagnose := func(optimized bool, sub string) *ion.Report {
		w := workloads.E2E(optimized)
		trace, err := w.Generate()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fw.AnalyzeLog(context.Background(), trace, w.Title, filepath.Join(dir, sub))
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Println("diagnosing E2E baseline (fill values on)...")
	before := diagnose(false, "before")
	fmt.Println("diagnosing E2E optimized (fill values off)...")
	after := diagnose(true, "after")

	d, err := diffreport.Compare(before, after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(d.Render())
}
