// interactive: the paper's conversational interface. After diagnosing
// the E2E baseline trace (the rank-0 fill-value pathology), the example
// plays a scripted Q&A session against the diagnosis — the same
// interface `ion -interactive` exposes as a live REPL.
//
//	go run ./examples/interactive
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/workloads"
)

func main() {
	w := workloads.E2E(false)
	trace, err := w.Generate()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ion-interactive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	client := expertsim.New()
	fw, err := ion.New(ion.Config{Client: client, SkipSummary: true})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), trace, w.Title, filepath.Join(dir, "csv"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosed %s: %d issue(s) detected, %d noted as benign\n\n",
		w.Title, len(rep.Detected()), len(rep.Mitigated()))

	session, err := ion.NewSession(client, rep)
	if err != nil {
		log.Fatal(err)
	}
	questions := []string{
		"Which rank is responsible for the load imbalance, and how bad is it?",
		"How do I fix the imbalance?",
		"Is the file misalignment related to the netCDF header?",
	}
	for _, q := range questions {
		fmt.Printf("user> %s\n\n", q)
		answer, err := session.Ask(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ion> %s\n\n%s\n", answer, "----------------------------------------")
	}
}
